"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness fig2
    python -m repro.harness fig4
    python -m repro.harness fig5
    python -m repro.harness bing-partial
    python -m repro.harness static
    python -m repro.harness tsan
    python -m repro.harness frames [workload ...] [--engine=NAME]
    python -m repro.harness service [workload ...] [--golden=PATH] [--rounds=N]
    python -m repro.harness optimize [workload ...]
    python -m repro.harness all

``static`` cross-validates the static dead-code analyzer
(``repro.jsstatic``) against each workload's dynamic coverage.
``tsan`` runs the concurrency sanitizer: it asserts the four paper
workloads are race-free under happens-before replay and folds per-thread
sync-edge counts into the thread-breakdown report (see
docs/race-detection.md).
``frames`` runs the multi-frame workloads (default: ticker, livefeed,
scrollseq) through the incremental pipeline and prints each frame's
pixel-slice and redundancy breakdown (see docs/incremental-pipeline.md);
``--engine=incremental`` profiles all frames in one streaming
checkpointed pass instead of one full slice per frame (identical
numbers; see docs/incremental-slicing.md).
``service`` smoke-tests the profiling daemon (see
docs/profiling-service.md): it boots an in-process server, submits the
paper workloads (default: the four Table II benchmarks) for ``--rounds``
rounds (default 2), and asserts repeat rounds are served from the
content-addressed cache with byte-identical results; ``--golden=PATH``
additionally checks fractions against the frozen paper numbers.
``optimize`` runs the proof-carrying waste eliminator (see
docs/optimizer.md) on each named workload (default: the four paper
sites): it rewrites the workload's JS from static + trace evidence,
re-executes, and asserts the framebuffer is pixel-identical with zero
dead-function trip-wire hits.

Unknown targets and unknown workload names exit with status 2 —
uniformly, for every subcommand.
"""

from __future__ import annotations

import sys

from .experiments import cached_frames, cached_run
from .reporting import (
    bing_partial_report,
    figure2_report,
    figure4_report,
    figure5_report,
    frames_report,
    run_all_table2,
    table1_report,
    table2_report,
)

_TARGETS = (
    "table1", "table2", "fig2", "fig4", "fig5", "bing-partial", "static",
    "tsan", "frames", "service", "optimize", "all",
)

#: Targets that accept workload-name arguments (the rest take none).
_WORKLOAD_TARGETS = ("frames", "service", "optimize")


def _tsan() -> str:
    from ..tsan.report import (
        PAPER_WORKLOADS,
        run_workload,
        sync_breakdown,
        workload_table,
    )

    results = [run_workload(name) for name in PAPER_WORKLOADS]
    racy = [r.name for r in results if not r.report.ok]
    assert not racy, f"paper workloads must be race-free, found races in {racy}"
    sections = [workload_table(results), ""]
    for result in results:
        sections.append(sync_breakdown(result))
        sections.append("")
    return "\n".join(sections).rstrip()


def _static() -> str:
    from ..jsstatic.compare import compare_benchmark, comparison_report
    from ..workloads import TABLE2_BENCHMARKS

    names = ["wiki_article"] + [
        n for n in TABLE2_BENCHMARKS if n != "wiki_article"
    ]
    comparisons = []
    for name in names:
        result = cached_run(name)
        comparisons.append(
            compare_benchmark(
                name, engine=result.engine, pixel_fraction=result.stats.fraction
            )
        )
    return comparison_report(comparisons)


def _table1() -> str:
    load = {
        "amazon_desktop": cached_run("amazon_desktop"),
        "bing": cached_run("bing_load_only"),
        "google_maps": cached_run("google_maps"),
    }
    browse = {
        "amazon_desktop": cached_run("amazon_desktop_browse"),
        "bing": cached_run("bing"),
        "google_maps": cached_run("google_maps_browse"),
    }
    return table1_report(load, browse)


def _optimize(names) -> str:
    from ..optimize import optimize_benchmark, verification_report

    sections = []
    for name in names:
        result = optimize_benchmark(name)
        result.check()
        sections.append(verification_report(result))
    return "\n\n".join(sections)


def _frames(names, options) -> str:
    engine = options.get("engine", "sequential")
    return frames_report(
        {name: cached_frames(name, slice_engine=engine) for name in names}
    )


def _service(names, options) -> str:
    from .service import run_service_smoke

    golden = options.get("golden")
    rounds = int(options.get("rounds", "2"))
    return run_service_smoke(names, golden_path=golden, rounds=rounds)


def main(argv) -> int:
    if not argv or argv[0] not in _TARGETS:
        print(__doc__)
        return 2
    target = argv[0]

    options = {}
    workload_args = []
    for arg in argv[1:]:
        if arg.startswith("--"):
            key, _, value = arg[2:].partition("=")
            options[key] = value
        else:
            workload_args.append(arg)
    if options and target not in ("service", "frames"):
        print(f"target {target!r} takes no options", file=sys.stderr)
        return 2
    if target == "service":
        unknown_opts = sorted(set(options) - {"golden", "rounds"})
        if unknown_opts:
            print(f"unknown option(s): {', '.join(unknown_opts)}", file=sys.stderr)
            return 2
        rounds = options.get("rounds")
        if rounds is not None and (not rounds.isdigit() or int(rounds) < 1):
            print(f"--rounds expects a positive integer, got {rounds!r}",
                  file=sys.stderr)
            return 2
    if target == "frames":
        unknown_opts = sorted(set(options) - {"engine"})
        if unknown_opts:
            print(f"unknown option(s): {', '.join(unknown_opts)}", file=sys.stderr)
            return 2
        frames_engine = options.get("engine")
        from ..profiler.api import ENGINES

        if frames_engine is not None and frames_engine not in ENGINES:
            print(
                f"--engine expects one of {', '.join(ENGINES)}; "
                f"got {frames_engine!r}",
                file=sys.stderr,
            )
            return 2

    from ..workloads import (
        MULTIFRAME_BENCHMARKS,
        TABLE2_BENCHMARKS,
        benchmark_names,
        unknown_names,
    )

    # Workload-name arguments are validated uniformly, for every target:
    # a bad name exits 2 with the same message everywhere.
    unknown = unknown_names(workload_args)
    if unknown:
        print(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(benchmark_names())}",
            file=sys.stderr,
        )
        return 2
    if workload_args and target not in _WORKLOAD_TARGETS:
        print(
            f"target {target!r} takes no workload arguments "
            f"(only {', '.join(_WORKLOAD_TARGETS)} do)",
            file=sys.stderr,
        )
        return 2

    frame_names = workload_args or list(MULTIFRAME_BENCHMARKS)
    service_names = workload_args or list(TABLE2_BENCHMARKS)
    optimize_names = workload_args or ["wiki_article"] + [
        n for n in TABLE2_BENCHMARKS if n != "wiki_article"
    ]
    if target in ("table1", "all"):
        print(_table1())
        print()
    if target in ("table2", "all"):
        print(table2_report(run_all_table2()))
        print()
    if target in ("fig2", "all"):
        print(figure2_report(cached_run("amazon_desktop_browse")))
        print()
    if target in ("fig4", "all"):
        print(figure4_report(run_all_table2()))
        print()
    if target in ("fig5", "all"):
        print(figure5_report(run_all_table2()))
        print()
    if target in ("bing-partial", "all"):
        print(bing_partial_report(cached_run("bing")))
        print()
    if target in ("static", "all"):
        print(_static())
        print()
    if target in ("tsan", "all"):
        print(_tsan())
        print()
    if target in ("frames", "all"):
        print(_frames(frame_names, options))
        print()
    if target in ("service", "all"):
        print(_service(service_names, options))
        print()
    if target in ("optimize", "all"):
        print(_optimize(optimize_names))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
