"""Service smoke run: the daemon end-to-end against the paper workloads.

``python -m repro.harness service`` boots an in-process profiling daemon
on a throwaway socket + cache directory, submits every requested workload
for ``rounds`` rounds, and asserts the service contract:

* every job completes with a result (no crashes, no timeouts);
* repeat rounds return byte-identical slices (same ``flags_sha256``) —
  and, when a golden file is given, fractions equal to the frozen
  paper numbers within 1e-9;
* from the second round on, at least 90% of submits are answered from
  the content-addressed cache without invoking the slicer (verified via
  the stats counters, not timing).

The returned report records per-workload cold/warm latencies — the
numbers quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..service.client import ServiceClient
from ..service.jobs import JobSpec
from ..service.server import ProfilingServer

#: Outcomes that came from the cache rather than a slicer run.
_CACHE_OUTCOMES = ("cache-memory", "cache-disk")


def run_service_smoke(
    names: Sequence[str],
    golden_path: Optional[str] = None,
    rounds: int = 2,
    engine: str = "sequential",
    workers: int = 2,
) -> str:
    """Run the smoke scenario and return its report (asserts on failure)."""
    golden: Dict = {}
    if golden_path:
        golden = json.loads(Path(golden_path).read_text("utf-8")).get("table2", {})

    lines = [
        "Profiling-service smoke "
        f"({len(names)} workloads x {rounds} rounds, engine={engine})",
        "",
        f"{'workload':<24s} {'fraction':>9s} {'cold (s)':>9s} "
        f"{'warm (s)':>9s} {'speedup':>8s} {'warm via':<12s}",
    ]

    with tempfile.TemporaryDirectory(prefix="repro-svc-") as tmp:
        server = ProfilingServer(
            f"{tmp}/service.sock",
            f"{tmp}/cache",
            workers=workers,
            queue_size=max(16, len(names) * rounds),
        )
        server.start()
        client = ServiceClient(server.socket_path)
        try:
            timings: Dict[str, List[float]] = {name: [] for name in names}
            results: Dict[str, List[Dict]] = {name: [] for name in names}
            outcomes_per_round: List[List[str]] = []
            for _ in range(rounds):
                round_outcomes: List[str] = []
                for name in names:
                    start = time.perf_counter()
                    response = client.submit(
                        JobSpec(workload=name, engine=engine), wait=True
                    )
                    elapsed = time.perf_counter() - start
                    outcome = response["outcome"]
                    assert response.get("result"), (
                        f"{name}: job ended {outcome}: {response.get('error')}"
                    )
                    timings[name].append(elapsed)
                    results[name].append(response["result"])
                    round_outcomes.append(outcome)
                outcomes_per_round.append(round_outcomes)

            stats = client.stats()
        finally:
            client.shutdown(drain=True)
            server.serve_forever()

    for name in names:
        runs = results[name]
        first = runs[0]
        for later in runs[1:]:
            assert later["flags_sha256"] == first["flags_sha256"], (
                f"{name}: repeat submit returned a different slice"
            )
        if name in golden:
            frozen = golden[name]
            assert abs(first["fraction"] - frozen["all_fraction"]) < 1e-9, (
                f"{name}: service fraction {first['fraction']!r} != "
                f"golden {frozen['all_fraction']!r}"
            )
            assert first["total"] == frozen["total_instructions"], (
                f"{name}: service total {first['total']} != "
                f"golden {frozen['total_instructions']}"
            )

    warm_outcomes = [o for outcomes in outcomes_per_round[1:] for o in outcomes]
    if warm_outcomes:
        warm_hits = sum(1 for o in warm_outcomes if o in _CACHE_OUTCOMES)
        hit_rate = warm_hits / len(warm_outcomes)
        assert hit_rate >= 0.9, (
            f"warm rounds must be >= 90% cache hits, got "
            f"{warm_hits}/{len(warm_outcomes)}"
        )

    for position, name in enumerate(names):
        cold = timings[name][0]
        warm = min(timings[name][1:]) if len(timings[name]) > 1 else None
        fraction = results[name][0]["fraction"]
        via = outcomes_per_round[-1][position] if rounds > 1 else "-"
        if warm is not None and warm > 0:
            warm_text, speedup = f"{warm:9.3f}", f"{cold / warm:7.1f}x"
        else:
            warm_text, speedup = "        -", "       -"
        lines.append(
            f"{name:<24s} {fraction:>8.1%} {cold:>9.3f} "
            f"{warm_text} {speedup:>8s} {via:<12s}"
        )

    lines.append("")
    cache = stats["cache"]
    outcome_counts = stats["outcomes"]
    lines.append(
        f"cache: {cache['memory_hits']} memory + {cache['disk_hits']} disk hits, "
        f"{cache['misses']} misses (hit rate {cache['hit_rate']:.0%}); "
        f"outcomes: {outcome_counts['ok']} sliced, "
        f"{outcome_counts['cache-memory'] + outcome_counts['cache-disk']} cached"
    )
    if golden_path:
        checked = [name for name in names if name in golden]
        lines.append(
            f"golden check: {len(checked)}/{len(names)} workloads matched "
            f"{Path(golden_path).name} within 1e-9"
        )
    return "\n".join(lines)
