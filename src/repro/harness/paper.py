"""Reference values from the paper's evaluation (Tables I, II; Sections V).

Used by the benchmark harness to print measured-vs-paper comparisons.
Absolute instruction counts are in millions (our traces are scaled down
~10^4; only ratios and percentages are compared).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Table2Column:
    """One benchmark column of Table II (percentages in [0, 1])."""

    name: str
    label: str
    all_slice: float
    all_instructions_m: int
    main_slice: float
    main_instructions_m: int
    compositor_slice: float
    compositor_instructions_m: int
    rasterizer_slices: Tuple[float, ...]
    rasterizer_instructions_m: Tuple[int, ...]


TABLE2: Dict[str, Table2Column] = {
    "amazon_desktop": Table2Column(
        name="amazon_desktop",
        label="Amazon (desktop view): Load",
        all_slice=0.46, all_instructions_m=6217,
        main_slice=0.52, main_instructions_m=2173,
        compositor_slice=0.34, compositor_instructions_m=1711,
        rasterizer_slices=(0.55, 0.60, 0.54),
        rasterizer_instructions_m=(199, 66, 191),
    ),
    "amazon_mobile": Table2Column(
        name="amazon_mobile",
        label="Amazon (mobile view): Load",
        all_slice=0.43, all_instructions_m=2861,
        main_slice=0.59, main_instructions_m=764,
        compositor_slice=0.35, compositor_instructions_m=1135,
        rasterizer_slices=(0.14, 0.13),
        rasterizer_instructions_m=(76, 88),
    ),
    "google_maps": Table2Column(
        name="google_maps",
        label="Google Maps: Load",
        all_slice=0.47, all_instructions_m=4238,
        main_slice=0.61, main_instructions_m=1382,
        compositor_slice=0.35, compositor_instructions_m=1698,
        rasterizer_slices=(0.78, 0.74),
        rasterizer_instructions_m=(32, 29),
    ),
    "bing": Table2Column(
        name="bing",
        label="Bing: Load + Browse",
        all_slice=0.43, all_instructions_m=10494,
        main_slice=0.44, main_instructions_m=3499,
        compositor_slice=0.34, compositor_instructions_m=3702,
        rasterizer_slices=(0.71, 0.52),
        rasterizer_instructions_m=(617, 345),
    ),
}

#: Paper average of the "All" row.
TABLE2_AVERAGE_SLICE = 0.45

#: Table I: (site, condition) -> (unused bytes, total bytes, percentage).
TABLE1: Dict[Tuple[str, str], Tuple[str, str, float]] = {
    ("Amazon", "Only Load"): ("955 KB", "1.6 MB", 0.58),
    ("Bing", "Only Load"): ("103 KB", "199 KB", 0.52),
    ("Google Maps", "Only Load"): ("1.9 MB", "3.9 MB", 0.49),
    ("Amazon", "Load and Browse"): ("882 KB", "1.6 MB", 0.54),
    ("Bing", "Load and Browse"): ("82.5 KB", "206 KB", 0.40),
    ("Google Maps", "Load and Browse"): ("2.0 MB", "4.6 MB", 0.43),
}

#: Section V-A, the Bing partial-slice experiment.
BING_LOAD_PREFIX_INSTRUCTIONS_M = 1700
BING_LOAD_ONLY_SLICE = 0.498
BING_FULL_SESSION_SLICE_OF_LOAD = 0.506

#: Figure 5: per benchmark, the fraction of non-slice instructions the
#: namespace analysis could categorize.
FIGURE5_CATEGORIZED_FRACTION: Dict[str, float] = {
    "amazon_desktop": 0.74,
    "amazon_mobile": 0.59,
    "google_maps": 0.53,
    "bing": 0.61,
}

#: The paper's qualitative Figure 5 findings.
FIGURE5_DOMINANT_CATEGORY = "JavaScript"
FIGURE5_TOP_CATEGORIES = ("JavaScript", "Debugging", "IPC")


def table2_column(name: str) -> Table2Column:
    return TABLE2[name]


def rasterizer_count(name: str) -> int:
    return len(TABLE2[name].rasterizer_slices)
