"""Experiment harness: end-to-end runners, paper references, reports."""

from .experiments import ExperimentResult, cached_run, run_benchmark, run_engine
from .paper import TABLE1, TABLE2, TABLE2_AVERAGE_SLICE, Table2Column, table2_column
from .reporting import (
    bing_partial_report,
    figure2_report,
    figure4_report,
    figure5_report,
    run_all_table2,
    table1_report,
    table2_report,
)

__all__ = [
    "ExperimentResult",
    "run_benchmark",
    "run_engine",
    "cached_run",
    "TABLE1",
    "TABLE2",
    "TABLE2_AVERAGE_SLICE",
    "Table2Column",
    "table2_column",
    "table1_report",
    "table2_report",
    "figure2_report",
    "figure4_report",
    "figure5_report",
    "bing_partial_report",
    "run_all_table2",
]
