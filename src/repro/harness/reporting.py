"""Measured-vs-paper report generation for every table and figure."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.coverage import CoverageRow, coverage_row
from ..analysis.figures import figure4_chart, figure5_chart
from ..analysis.utilization import ascii_chart, busy_fraction, find_spikes
from ..browser.context import MAIN_THREAD
from ..profiler import pixel_criteria
from ..profiler.stats import timeline_series, windowed_fraction
from . import paper
from .experiments import ExperimentResult, FrameExperimentResult, cached_run


def table2_report(results: Dict[str, ExperimentResult]) -> str:
    """Table II: slicing statistics per thread, measured vs paper."""
    lines = [
        "Table II: Slicing statistics of pixel-based approach "
        "(measured | paper reference)",
        "=" * 94,
    ]
    header = f"{'Thread':<14s}" + "".join(
        f"{paper.TABLE2[name].label.split(':')[0]:>20s}" for name in paper.TABLE2
    )
    lines.append(header)
    lines.append("-" * 94)

    def row(label: str, cells: List[str]) -> str:
        return f"{label:<14s}" + "".join(f"{c:>20s}" for c in cells)

    all_cells, main_cells, comp_cells = [], [], []
    for name in paper.TABLE2:
        result = results[name]
        ref = paper.TABLE2[name]
        all_cells.append(f"{result.stats.fraction:.0%} | {ref.all_slice:.0%}")
        main = result.stats.thread_by_name("CrRendererMain")
        main_cells.append(f"{main.fraction:.0%} | {ref.main_slice:.0%}")
        comp = result.stats.thread_by_name("Compositor")
        comp_cells.append(f"{comp.fraction:.0%} | {ref.compositor_slice:.0%}")
    lines.append(row("All", all_cells))
    lines.append(row("Main", main_cells))
    lines.append(row("Compositor", comp_cells))

    max_rasterizers = max(len(ref.rasterizer_slices) for ref in paper.TABLE2.values())
    for index in range(max_rasterizers):
        cells = []
        for name in paper.TABLE2:
            result = results[name]
            ref = paper.TABLE2[name]
            rasters = result.stats.threads_by_prefix("CompositorTileWorker")
            if index < len(ref.rasterizer_slices) and index < len(rasters):
                cells.append(
                    f"{rasters[index].fraction:.0%} | {ref.rasterizer_slices[index]:.0%}"
                )
            else:
                cells.append("- | -")
        lines.append(row(f"Rasterizer {index + 1}", cells))

    lines.append("-" * 94)
    total_cells = []
    for name in paper.TABLE2:
        result = results[name]
        ref = paper.TABLE2[name]
        total_cells.append(f"{result.stats.total // 1000}K | {ref.all_instructions_m}M")
    lines.append(row("Total instrs", total_cells))
    measured_avg = sum(r.stats.fraction for r in results.values()) / len(results)
    lines.append(
        f"\nAverage overall slice: measured {measured_avg:.1%} | paper "
        f"{paper.TABLE2_AVERAGE_SLICE:.0%}"
    )
    return "\n".join(lines)


def table1_report(
    load_results: Dict[str, ExperimentResult],
    browse_results: Dict[str, ExperimentResult],
) -> str:
    """Table I: unused JS+CSS bytes, measured vs paper percentages."""
    site_names = {"amazon_desktop": "Amazon", "bing": "Bing", "google_maps": "Google Maps"}
    lines = [
        "Table I: Unused JavaScript and CSS code bytes (measured | paper %)",
        "=" * 76,
    ]
    for condition, results in (("Only Load", load_results), ("Load and Browse", browse_results)):
        for key, result in results.items():
            site = site_names[key]
            row = coverage_row(result, site, condition)
            ref = paper.TABLE1.get((site, condition))
            ref_pct = f"{ref[2]:.0%}" if ref else "n/a"
            lines.append(f"{row.formatted()} | paper {ref_pct}")
    return "\n".join(lines)


def figure2_report(result: ExperimentResult) -> str:
    """Figure 2: main-thread CPU utilization while browsing amazon.com."""
    series = result.utilization(MAIN_THREAD)
    spikes = find_spikes(series)
    lines = [
        ascii_chart(series, title="Figure 2: CPU utilization, main thread (amazon.com session)"),
        "",
        f"activity spikes detected: {len(spikes)} "
        "(expected: one large load spike plus one per user interaction)",
        f"mean utilization: {busy_fraction(series):.1%}",
    ]
    for i, spike in enumerate(spikes):
        lines.append(
            f"  spike {i}: {spike.start_s:.1f}s - {spike.end_s:.1f}s peak {spike.peak:.0%}"
        )
    return "\n".join(lines)


def figure4_report(results: Dict[str, ExperimentResult]) -> str:
    """Figure 4 (a-h): slice fraction over the backward pass."""
    lines = ["Figure 4: Changes of slicing percentage over the backward pass", ""]
    for name, result in results.items():
        label = paper.TABLE2[name].label
        lines.append(figure4_chart(timeline_series(result.pixel), f"({label}) All threads"))
        lines.append("")
        lines.append(
            figure4_chart(timeline_series(result.pixel, main=True), f"({label}) Main thread")
        )
        lines.append("")
    return "\n".join(lines)


def figure5_report(results: Dict[str, ExperimentResult]) -> str:
    """Figure 5: distribution of unnecessary-computation categories."""
    distributions = [
        (paper.TABLE2[name].label, result.categories) for name, result in results.items()
    ]
    lines = [figure5_chart(distributions)]
    lines.append("paper reference: categorized fractions "
                 + ", ".join(f"{paper.TABLE2[n].label.split(':')[0]}={paper.FIGURE5_CATEGORIZED_FRACTION[n]:.0%}"
                             for n in results))
    lines.append(f"paper's dominant category: {paper.FIGURE5_DOMINANT_CATEGORY}")
    return "\n".join(lines)


def bing_partial_report(result: ExperimentResult) -> str:
    """Section V-A: slicing the Bing trace only up to load-complete."""
    store = result.store
    load_idx = store.metadata.load_complete_index
    if load_idx is None:
        return "bing trace has no load-complete marker"
    partial = result.profiler.slice(pixel_criteria(store).windowed(load_idx))
    load_only = windowed_fraction(partial, 0, load_idx)
    full_of_load = windowed_fraction(result.pixel, 0, load_idx)
    return "\n".join(
        [
            "Bing partial-slice experiment (Section V-A):",
            f"  load-only slice of load-time instructions:    measured {load_only:.1%} | paper {paper.BING_LOAD_ONLY_SLICE:.1%}",
            f"  full-session slice of load-time instructions: measured {full_of_load:.1%} | paper {paper.BING_FULL_SESSION_SLICE_OF_LOAD:.1%}",
            f"  browsing adds: measured {full_of_load - load_only:+.1%} | paper "
            f"{paper.BING_FULL_SESSION_SLICE_OF_LOAD - paper.BING_LOAD_ONLY_SLICE:+.1%}",
        ]
    )


def frames_report(results: Dict[str, FrameExperimentResult]) -> str:
    """Per-frame redundancy breakdown for the multi-frame workloads.

    One block per workload: each complete frame epoch's instruction count,
    its own pixel-slice share, and the redundant / fresh-unnecessary split
    of the rest, plus the steady-state size relative to the load frame.
    """
    lines = [
        "Cross-frame redundancy: per-frame pixel slices "
        "(incremental frame pipeline)",
        "=" * 78,
    ]
    for name, result in results.items():
        report = result.report
        lines.append(f"{name} ({len(report.frames)} frames)")
        lines.append(
            f"  {'frame':<7s}{'kind':<8s}{'instrs':>8s}{'slice':>8s}"
            f"{'redund':>8s}{'fresh':>8s}{'red%':>7s}{'vs f0':>8s}"
        )
        first = report.first()
        for frame in report.frames:
            vs_first = (
                frame.total / first.total if first and first.total else 0.0
            )
            lines.append(
                f"  {frame.frame_id:<7d}{frame.kind:<8s}{frame.total:>8d}"
                f"{frame.in_slice:>8d}{frame.redundant:>8d}"
                f"{frame.fresh_unnecessary:>8d}"
                f"{frame.redundant_fraction:>7.1%}{vs_first:>8.1%}"
            )
        ratio = report.steady_state_ratio()
        if ratio is not None:
            lines.append(
                f"  steady-state frames average {ratio:.1%} of the load frame"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def parallel_speedup_report(timings: Dict[str, Dict[str, object]]) -> str:
    """Sequential-vs-parallel backward-pass wall-clock comparison.

    ``timings`` maps workload name to a dict with ``records``,
    ``sequential_s``, ``parallel_s``, ``workers``, and the parallel
    engine's convergence counters (``rounds``, ``epoch_runs``,
    ``epochs``, ``pass_throughs``).  Produced by
    ``benchmarks/test_bench_parallel_slicer.py``.
    """
    lines = [
        "Parallel backward slicer: wall-clock vs sequential engine",
        "=" * 78,
        f"{'Workload':<16s}{'Records':>9s}{'Seq (s)':>9s}{'Par (s)':>9s}"
        f"{'Speedup':>9s}{'Workers':>8s}{'Epochs':>7s}{'Runs':>6s}{'Rounds':>7s}",
        "-" * 78,
    ]
    for name, t in timings.items():
        seq = float(t["sequential_s"])
        par = float(t["parallel_s"])
        speedup = seq / par if par else float("inf")
        lines.append(
            f"{name:<16s}{t['records']:>9}{seq:>9.3f}{par:>9.3f}"
            f"{speedup:>8.2f}x{t['workers']:>8}{t['epochs']:>7}"
            f"{t['epoch_runs']:>6}{t['rounds']:>7}"
        )
    lines.append("-" * 78)
    lines.append(
        "epoch runs > epochs measures fixpoint re-execution; speedup needs "
        "spare cores\n(a 1-CPU host serializes the workers and reports < 1x)."
    )
    return "\n".join(lines)


def run_all_table2() -> Dict[str, ExperimentResult]:
    """Run (or reuse) the four Table II benchmarks."""
    return {name: cached_run(name) for name in paper.TABLE2}
