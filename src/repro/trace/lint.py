"""Trace sanitizer: well-formedness lint for instruction traces.

A trace produced by :class:`~repro.machine.tracer.Tracer` obeys structural
invariants the slicers silently rely on.  ``lint_trace`` checks them
explicitly so a corrupted or hand-built trace fails loudly *before* a
slicer produces quietly-wrong results.  Named checks:

* ``call-ret-balance`` (error) — per thread, RETs never outnumber CALLs
  at any prefix and every CALL is unwound by the end of the trace;
* ``branch-flags-pairing`` (error) — every BRANCH reads FLAGS and is
  immediately preceded on its thread by the CMP that wrote them;
* ``register-use-before-def`` (error) — a record reads a register its
  thread never wrote.  SYSCALL reads of the AMD64 argument registers are
  exempt: the ABI hand-off is implicit in the tracer's model;
* ``record-shape`` (error) — kind-specific fields are consistent
  (SYSCALL has a syscall number, MARKER has a tag, register ids are in
  range, the tid was spawned);
* ``monotone-marker-clock`` (error) — tile-marker metadata indices are
  strictly increasing, in range, and point at TILE_MARKER records whose
  pixel cells match the metadata side channel;
* ``epoch-consistency`` (error) — ``store.epoch_bounds`` tiles the trace
  exactly (contiguous, non-overlapping, full coverage);
* ``ipc-use-before-def`` (error) — a record inside the IPC receive/flush
  frames (``ipc::ChannelMojo::OnMessageReceived`` / ``WriteToPipe``) reads
  a payload cell nothing ever wrote: a message consumed before any
  ``send_from``/``recvfrom`` produced it;
* ``lock-discipline`` (error) — per thread: recursive acquisition of a
  lock already held, release of a lock not held, locks still held at the
  end of the trace, or a malformed sync marker (sync/lock-tagged but not
  parseable as a :class:`~repro.trace.records.SyncEvent`);
* ``frame-epoch-monotonicity`` (error) — FRAME_BEGIN/FRAME_END markers
  pair up in the record stream (no nested or unclosed frames), and the
  frame-span metadata mirrors them exactly: ids strictly increasing,
  spans complete, non-overlapping, in trace order, each endpoint pointing
  at the matching marker record;
* ``memory-use-before-def`` (warning) — a cell is read before any record
  writes it.  Real engine traces legitimately read pre-initialized state
  (fetched bytes, config), so this is diagnostic, not fatal.  Sync
  markers are exempt: their single "read" cell names the synchronization
  object, which is never data-written by design;
* ``checkpoint-consistency`` (error, only with a ``--checkpoint`` image)
  — a serialized slice checkpoint matches the trace it claims to
  summarize: its region tiling equals the trace's canonical frame-region
  tiling, every memoized region has facts, and every summarized region's
  record count and :func:`~repro.trace.stream.region_digest` match the
  records it covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..machine.registers import (
    NUM_REGISTERS,
    SYSCALL_ARG_REGISTERS,
    register_name,
)
from ..machine.tracer import TILE_MARKER
from .records import (
    FRAME_BEGIN_MARKER,
    FRAME_END_MARKER,
    InstrKind,
    is_sync_marker,
    sync_event_of,
)
from .checkpoint import CheckpointImage
from .store import TraceStore, epoch_bounds
from .stream import compute_regions, region_digest

ERROR = "error"
WARNING = "warning"

#: every named check, in report order
CHECKS = (
    "call-ret-balance",
    "branch-flags-pairing",
    "register-use-before-def",
    "record-shape",
    "monotone-marker-clock",
    "epoch-consistency",
    "ipc-use-before-def",
    "lock-discipline",
    "frame-epoch-monotonicity",
    "memory-use-before-def",
    "checkpoint-consistency",
)

_FLAGS = 0
_SYSCALL_ARGS = set(SYSCALL_ARG_REGISTERS)

#: frames whose reads consume IPC payload cells
_IPC_CONSUMER_FNS = (
    "ipc::ChannelMojo::OnMessageReceived",
    "ipc::ChannelMojo::WriteToPipe",
)


@dataclass(frozen=True)
class LintIssue:
    """One violation of a named invariant."""

    check: str
    severity: str
    message: str
    #: record index the issue anchors to, if any
    index: Optional[int] = None

    def __str__(self) -> str:
        where = f" @record {self.index}" if self.index is not None else ""
        return f"[{self.severity}] {self.check}{where}: {self.message}"


@dataclass
class LintReport:
    """All issues found in one trace, plus per-check tallies."""

    n_records: int
    issues: List[LintIssue] = field(default_factory=list)
    #: total violations per check (issues are capped, counts are not)
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == ERROR]

    @property
    def warnings(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity invariant is violated."""
        return not any(
            count and _SEVERITY[check] == ERROR
            for check, count in self.counts.items()
        )

    def summary(self) -> str:
        lines = [f"{self.n_records} records linted"]
        for check in CHECKS:
            count = self.counts.get(check, 0)
            status = "ok" if count == 0 else f"{count} violation(s)"
            lines.append(f"  {check:<24s} {status}")
        shown = len(self.issues)
        total = sum(self.counts.values())
        if total > shown:
            lines.append(f"  ({shown} of {total} issues shown)")
        lines.extend(str(issue) for issue in self.issues)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


_SEVERITY = {check: ERROR for check in CHECKS}
_SEVERITY["memory-use-before-def"] = WARNING


class TraceLintError(ValueError):
    """Raised by :func:`lint_or_raise` when a trace violates an invariant."""

    def __init__(self, report: LintReport) -> None:
        self.report = report
        failed = sorted(
            check
            for check, count in report.counts.items()
            if count and _SEVERITY[check] == ERROR
        )
        super().__init__(
            f"trace lint failed ({', '.join(failed)}):\n" + report.summary()
        )


class _Collector:
    def __init__(self, max_issues_per_check: int) -> None:
        self.max = max_issues_per_check
        self.report: Optional[LintReport] = None

    def bind(self, report: LintReport) -> None:
        self.report = report

    def add(self, check: str, message: str, index: Optional[int] = None) -> None:
        report = self.report
        assert report is not None
        count = report.counts.get(check, 0)
        report.counts[check] = count + 1
        if count < self.max:
            report.issues.append(
                LintIssue(check, _SEVERITY[check], message, index)
            )


def lint_trace(
    store: TraceStore,
    epoch_size: int = 4096,
    max_issues_per_check: int = 10,
    checkpoint: Optional[CheckpointImage] = None,
) -> LintReport:
    """Check every invariant; return a report (never raises).

    ``checkpoint`` additionally runs the ``checkpoint-consistency`` check
    against the given serialized slice checkpoint (normally the trace's
    ``.ckpt`` sidecar); without one the check trivially passes.
    """
    report = LintReport(n_records=len(store))
    out = _Collector(max_issues_per_check)
    out.bind(report)
    for check in CHECKS:
        report.counts.setdefault(check, 0)

    known_tids = set(store.metadata.thread_names)
    depth: Dict[int, int] = {}
    regs_written: Dict[int, Set[int]] = {}
    mem_written: Set[int] = set()
    prev_kind: Dict[int, InstrKind] = {}
    warned_cells: Set[int] = set()
    ipc_warned: Set[int] = set()
    held_locks: Dict[int, List[int]] = {}
    open_frame_begin: Optional[int] = None
    n_stream_frames = 0
    ipc_fns: Set[int] = set()
    for fn_name in _IPC_CONSUMER_FNS:
        sym = store.symbols.lookup(fn_name)
        if sym is not None:
            ipc_fns.add(sym)

    for index, rec in enumerate(store.forward()):
        # -- record-shape ---------------------------------------------- #
        if rec.tid not in known_tids:
            out.add("record-shape", f"tid {rec.tid} was never spawned", index)
            known_tids.add(rec.tid)  # report each unknown tid once
        if rec.kind == InstrKind.SYSCALL and rec.syscall is None:
            out.add("record-shape", "SYSCALL record without syscall number", index)
        if rec.kind != InstrKind.SYSCALL and rec.syscall is not None:
            out.add(
                "record-shape",
                f"{rec.kind.name} record carries syscall={rec.syscall}",
                index,
            )
        if rec.kind == InstrKind.MARKER and rec.marker is None:
            out.add("record-shape", "MARKER record without marker tag", index)
        for reg in (*rec.regs_read, *rec.regs_written):
            if not 0 <= reg < NUM_REGISTERS:
                out.add("record-shape", f"register id {reg} out of range", index)

        # -- call-ret-balance ------------------------------------------ #
        if rec.kind == InstrKind.CALL:
            depth[rec.tid] = depth.get(rec.tid, 0) + 1
        elif rec.kind == InstrKind.RET:
            depth[rec.tid] = depth.get(rec.tid, 0) - 1
            if depth[rec.tid] < 0:
                out.add(
                    "call-ret-balance",
                    f"thread {rec.tid}: RET without matching CALL",
                    index,
                )
                depth[rec.tid] = 0

        # -- branch-flags-pairing -------------------------------------- #
        if rec.kind == InstrKind.BRANCH:
            if _FLAGS not in rec.regs_read:
                out.add("branch-flags-pairing", "BRANCH does not read FLAGS", index)
            if prev_kind.get(rec.tid) != InstrKind.CMP:
                out.add(
                    "branch-flags-pairing",
                    f"thread {rec.tid}: BRANCH not preceded by CMP",
                    index,
                )
        prev_kind[rec.tid] = rec.kind

        # -- register-use-before-def ----------------------------------- #
        written = regs_written.setdefault(rec.tid, set())
        for reg in rec.regs_read:
            if reg in written:
                continue
            if rec.kind == InstrKind.SYSCALL and reg in _SYSCALL_ARGS:
                continue  # implicit ABI argument set-up
            out.add(
                "register-use-before-def",
                f"thread {rec.tid} reads {register_name(reg)} before any write",
                index,
            )
        written.update(rec.regs_written)

        # -- lock-discipline ------------------------------------------- #
        sync_marker = is_sync_marker(rec)
        if sync_marker:
            event = sync_event_of(index, rec)
            if event is None:
                out.add(
                    "lock-discipline",
                    f"malformed sync marker {rec.marker!r} "
                    f"with {len(rec.mem_read)} sync cell(s)",
                    index,
                )
            elif event.kind == "lock":
                held = held_locks.setdefault(event.tid, [])
                if event.op == "acquire":
                    if event.obj in held:
                        out.add(
                            "lock-discipline",
                            f"thread {event.tid}: recursive acquire of lock "
                            f"cell {event.obj:#x}",
                            index,
                        )
                    else:
                        held.append(event.obj)
                elif event.obj in held:
                    held.remove(event.obj)
                else:
                    out.add(
                        "lock-discipline",
                        f"thread {event.tid}: release of lock cell "
                        f"{event.obj:#x} not held",
                        index,
                    )

        # -- frame-epoch-monotonicity: marker pairing ------------------ #
        if rec.kind == InstrKind.MARKER:
            if rec.marker == FRAME_BEGIN_MARKER:
                if open_frame_begin is not None:
                    out.add(
                        "frame-epoch-monotonicity",
                        f"frame begun while frame at {open_frame_begin} "
                        "is still open",
                        index,
                    )
                open_frame_begin = index
                n_stream_frames += 1
            elif rec.marker == FRAME_END_MARKER:
                if open_frame_begin is None:
                    out.add(
                        "frame-epoch-monotonicity",
                        "frame ended with no frame open",
                        index,
                    )
                open_frame_begin = None

        # -- ipc-use-before-def ---------------------------------------- #
        if rec.fn in ipc_fns and not sync_marker:
            for cell in rec.mem_read:
                if cell not in mem_written and cell not in ipc_warned:
                    ipc_warned.add(cell)
                    out.add(
                        "ipc-use-before-def",
                        f"{store.symbols.name(rec.fn)} consumes cell "
                        f"{cell:#x} that no send ever wrote",
                        index,
                    )

        # -- memory-use-before-def (warning) --------------------------- #
        if not sync_marker:
            for cell in rec.mem_read:
                if cell not in mem_written and cell not in warned_cells:
                    warned_cells.add(cell)
                    out.add(
                        "memory-use-before-def",
                        f"cell {cell:#x} read before any write",
                        index,
                    )
        mem_written.update(rec.mem_written)

    # -- call-ret-balance: final unwinding ----------------------------- #
    for tid in sorted(depth):
        if depth[tid] > 0:
            out.add(
                "call-ret-balance",
                f"thread {tid}: {depth[tid]} CALL(s) never returned",
            )

    # -- lock-discipline: locks held past the end of the trace --------- #
    for tid in sorted(held_locks):
        for obj in held_locks[tid]:
            out.add(
                "lock-discipline",
                f"thread {tid}: lock cell {obj:#x} still held at end of trace",
            )

    # -- monotone-marker-clock ----------------------------------------- #
    last_index = -1
    for index, cells in store.metadata.tile_buffers:
        if index <= last_index:
            out.add(
                "monotone-marker-clock",
                f"tile-marker index {index} not after previous {last_index}",
                index,
            )
        last_index = index
        if not 0 <= index < len(store):
            out.add(
                "monotone-marker-clock",
                f"tile-marker index {index} outside trace of {len(store)}",
            )
            continue
        rec = store[index]
        if rec.kind != InstrKind.MARKER or rec.marker != TILE_MARKER:
            out.add(
                "monotone-marker-clock",
                f"metadata points at {rec.kind.name}, not a {TILE_MARKER} marker",
                index,
            )
        elif tuple(rec.mem_read) != tuple(cells):
            out.add(
                "monotone-marker-clock",
                "metadata pixel cells disagree with the marker record",
                index,
            )
    load_idx = store.metadata.load_complete_index
    if load_idx is not None and not 0 <= load_idx < max(1, len(store)):
        out.add(
            "monotone-marker-clock",
            f"load-complete index {load_idx} outside trace of {len(store)}",
        )

    # -- frame-epoch-monotonicity: metadata vs record stream ------------ #
    if open_frame_begin is not None:
        out.add(
            "frame-epoch-monotonicity",
            f"frame begun at {open_frame_begin} never ended",
        )
    frames = store.metadata.frames
    if len(frames) != n_stream_frames:
        out.add(
            "frame-epoch-monotonicity",
            f"metadata lists {len(frames)} frame(s) but the trace "
            f"contains {n_stream_frames} frame-begin marker(s)",
        )
    prev_id = None
    prev_end = -1
    for span in frames:
        if prev_id is not None and span.frame_id <= prev_id:
            out.add(
                "frame-epoch-monotonicity",
                f"frame id {span.frame_id} not after previous {prev_id}",
                span.begin,
            )
        prev_id = span.frame_id
        if span.end is None:
            out.add(
                "frame-epoch-monotonicity",
                f"frame {span.frame_id} has no end marker",
                span.begin,
            )
            continue
        if span.begin <= prev_end or span.end <= span.begin:
            out.add(
                "frame-epoch-monotonicity",
                f"frame {span.frame_id} span [{span.begin}, {span.end}] "
                f"overlaps or inverts (previous end {prev_end})",
                span.begin,
            )
        prev_end = max(prev_end, span.end)
        for where, tag in ((span.begin, FRAME_BEGIN_MARKER), (span.end, FRAME_END_MARKER)):
            if not 0 <= where < len(store):
                out.add(
                    "frame-epoch-monotonicity",
                    f"frame {span.frame_id} index {where} outside trace "
                    f"of {len(store)}",
                )
                continue
            rec = store[where]
            if rec.kind != InstrKind.MARKER or rec.marker != tag:
                out.add(
                    "frame-epoch-monotonicity",
                    f"frame {span.frame_id} metadata points at "
                    f"{rec.kind.name}, not a {tag} marker",
                    where,
                )

    # -- epoch-consistency --------------------------------------------- #
    bounds = epoch_bounds(len(store), epoch_size)
    expected_lo = 0
    for lo, hi in bounds:
        if lo != expected_lo or hi <= lo:
            out.add(
                "epoch-consistency",
                f"epoch [{lo}, {hi}) does not continue at {expected_lo}",
            )
        if hi - lo > epoch_size:
            out.add(
                "epoch-consistency",
                f"epoch [{lo}, {hi}) exceeds epoch size {epoch_size}",
            )
        expected_lo = hi
    if len(store) and expected_lo != len(store):
        out.add(
            "epoch-consistency",
            f"epochs cover {expected_lo} of {len(store)} records",
        )

    # -- checkpoint-consistency ----------------------------------------- #
    if checkpoint is not None:
        _check_checkpoint(store, checkpoint, out)

    return report


def _check_checkpoint(
    store: TraceStore, image: CheckpointImage, out: _Collector
) -> None:
    """Validate a serialized slice checkpoint against ``store``.

    The checkpoint may summarize a *prefix* of the trace (a mid-stream
    save), so non-frame regions are only checked structurally; frame
    regions must coincide with the trace's frame spans exactly, and every
    summarized region's record count and content digest must match the
    records it covers.
    """
    n = len(store)
    canonical = {
        region.frame_id: region.key()
        for region in compute_regions(store.metadata.complete_frames(), n)
        if region.is_frame
    }
    cursor = 0
    for position, (lo, hi, frame_id, kind) in enumerate(image.regions):
        if not 0 <= lo < hi <= n:
            out.add(
                "checkpoint-consistency",
                f"region {position} [{lo}, {hi}) outside trace of {n}",
            )
            continue
        if lo != cursor:
            out.add(
                "checkpoint-consistency",
                f"region {position} [{lo}, {hi}) does not continue the "
                f"tiling at {cursor}",
            )
        cursor = hi
        if frame_id >= 0 and canonical.get(frame_id) != (lo, hi, frame_id, kind):
            out.add(
                "checkpoint-consistency",
                f"frame {frame_id} region [{lo}, {hi}) kind {kind!r} does "
                f"not match the trace's frame spans",
                lo,
            )
    for index in sorted(image.facts):
        if not 0 <= index < len(image.regions):
            out.add(
                "checkpoint-consistency",
                f"facts for region {index} but checkpoint tiles only "
                f"{len(image.regions)} region(s)",
            )
            continue
        lo, hi, frame_id, _kind = image.regions[index]
        if not 0 <= lo < hi <= n:
            continue  # already reported above
        facts = image.facts[index]
        if facts.n_records != hi - lo:
            out.add(
                "checkpoint-consistency",
                f"region {index} claims {facts.n_records} record(s) but "
                f"covers [{lo}, {hi})",
                lo,
            )
            continue
        actual = region_digest(store.span(lo, hi))
        if facts.digest != actual:
            out.add(
                "checkpoint-consistency",
                f"region {index} digest {facts.digest[:12]}… does not match "
                f"records [{lo}, {hi}) ({actual[:12]}…)",
                lo,
            )
    for index in sorted(image.memos):
        if index not in image.facts:
            out.add(
                "checkpoint-consistency",
                f"memo for region {index} has no region facts",
            )


def lint_or_raise(
    store: TraceStore,
    epoch_size: int = 4096,
    checkpoint: Optional[CheckpointImage] = None,
) -> LintReport:
    """Lint and raise :class:`TraceLintError` on any error-severity issue."""
    report = lint_trace(store, epoch_size=epoch_size, checkpoint=checkpoint)
    if not report.ok:
        raise TraceLintError(report)
    return report
