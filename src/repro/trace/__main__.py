"""Trace CLI: collect, inspect, and verify benchmark traces on disk.

Usage::

    python -m repro.trace collect amazon_desktop /tmp/amazon.ucwa
    python -m repro.trace collect amazon_desktop /tmp/amazon.ucwa --format=v3
    python -m repro.trace info /tmp/amazon.ucwa
    python -m repro.trace lint /tmp/amazon.ucwa [--json] [--checkpoint=PATH]
    python -m repro.trace convert /tmp/amazon.ucwa /tmp/amazon3.ucwa
    python -m repro.trace slice /tmp/amazon.ucwa
    python -m repro.trace slice /tmp/amazon.ucwa --criteria=syscalls
    python -m repro.trace slice /tmp/amazon.ucwa --engine=parallel --workers=4
    python -m repro.trace slice /tmp/amazon3.ucwa --engine=vectorized

``collect`` runs a registered benchmark and saves its trace
(``--format=v3`` writes the columnar UCWA3 layout with a precomputed
slice index; the default stays the row-oriented UCWA2); ``info``
prints per-thread and symbol statistics; ``lint`` checks the sanitizer's
well-formedness invariants (CALL/RET balance, use-before-def, lock
discipline, marker clock, frame-epoch monotonicity, epoch tiling — see
repro/trace/lint.py) and
exits non-zero on any error-severity violation; ``--json`` emits the
machine-readable report instead; ``--checkpoint=PATH`` additionally runs
the ``checkpoint-consistency`` check against a serialized incremental
slice checkpoint (a ``TRACE.ckpt`` sidecar, when present, is picked up
automatically; see docs/incremental-slicing.md); ``convert`` re-encodes
a trace between
formats (``--format=v3`` default, ``--format=v2`` for the row layout,
``--no-index`` to skip the stored slice index — see
docs/trace-format.md); ``slice`` runs a backward slice on a
stored trace (demonstrating the collect-once, profile-many workflow the
paper uses).  ``--criteria`` picks the criteria family — ``pixels``
(default), ``syscalls``, or ``pixels+syscalls`` (paper Section V);
``--engine=parallel`` selects the epoch-sharded engine (see
docs/parallel-slicing.md); ``--engine=vectorized`` the array-join
engine (fastest on UCWA3 traces); ``--engine=incremental`` the
frame-region checkpointing engine (see docs/incremental-slicing.md);
``--workers`` sets the parallel
engine's process count (default: REPRO_SLICER_WORKERS or usable
cores).  ``info``, ``lint``, ``convert``, and ``slice`` accept every
UCWA format.  Unknown criteria, engines, formats, and workload names
exit with status 2.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import Optional

from .store import load_any_trace, save_trace


def _collect(name: str, path: str, fmt: str = "v2") -> int:
    from ..harness.experiments import run_engine
    from ..workloads import benchmark

    try:
        bench = benchmark(name)
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2
    engine = run_engine(bench)
    store = engine.trace_store()
    if fmt == "v3":
        from ..profiler.vectorized import attach_index
        from .columnar import ColumnarTrace, save_columnar

        cols = ColumnarTrace.from_store(store)
        attach_index(cols)
        save_columnar(cols, path)
    else:
        save_trace(store, path)
    print(f"saved {len(store)} records ({len(store.thread_ids())} threads) to {path}")
    return 0


def _convert(src: str, dst: str, fmt: str = "v3", with_index: bool = True) -> int:
    from .columnar import convert_trace

    convert_trace(src, dst, fmt=fmt, with_index=with_index)
    import os

    print(f"wrote {dst} ({fmt}, {os.path.getsize(dst)} bytes)")
    return 0


def _info(path: str) -> int:
    store = load_any_trace(path)
    print(f"{path}: {len(store)} records")
    print(f"threads:")
    counts = store.instructions_per_thread()
    for tid in store.thread_ids():
        name = store.metadata.thread_names.get(tid, f"thread-{tid}")
        print(f"  {name:<28s} {counts[tid]:>8d}")
    print(f"tile markers: {len(store.metadata.tile_buffers)}")
    print(f"load-complete index: {store.metadata.load_complete_index}")
    frames = store.metadata.frames
    if frames:
        kinds = Counter(span.kind for span in frames)
        kind_text = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        print(f"frames: {len(frames)} ({kind_text})")
    top = Counter(store.symbols.name(r.fn) for r in store.forward())
    print("top functions:")
    for fn_name, count in top.most_common(10):
        print(f"  {count:>8d} {fn_name}")
    return 0


def _lint(
    path: str,
    epoch_size: int = 4096,
    as_json: bool = False,
    checkpoint_path: Optional[str] = None,
) -> int:
    from .checkpoint import CheckpointImage, sidecar_path
    from .lint import lint_trace

    checkpoint = None
    if checkpoint_path is None:
        sidecar = sidecar_path(path)
        if sidecar.exists():
            checkpoint_path = str(sidecar)
    if checkpoint_path is not None:
        try:
            checkpoint = CheckpointImage.load(checkpoint_path)
        except (ValueError, OSError) as err:
            print(f"error: cannot load checkpoint {checkpoint_path}: {err}",
                  file=sys.stderr)
            return 2
    report = lint_trace(
        load_any_trace(path), epoch_size=epoch_size, checkpoint=checkpoint
    )
    if as_json:
        print(
            json.dumps(
                {
                    "path": path,
                    "n_records": report.n_records,
                    "ok": report.ok,
                    "counts": report.counts,
                    "issues": [
                        {
                            "check": issue.check,
                            "severity": issue.severity,
                            "message": issue.message,
                            "index": issue.index,
                        }
                        for issue in report.issues
                    ],
                },
                indent=2,
            )
        )
    else:
        print(f"{path}:")
        print(report.summary())
    return 0 if report.ok else 1


def _slice(
    path: str,
    engine: str = "sequential",
    workers: Optional[int] = None,
    criteria: str = "pixels",
) -> int:
    from ..profiler.api import run_slice_job

    store = load_any_trace(path)
    result, stats = run_slice_job(
        store, criteria=criteria, engine=engine, workers=workers
    )
    print(f"{criteria} slice: {stats.fraction:.1%} of {stats.total} records")
    for thread in stats.threads:
        print(f"  {thread.name:<28s} {thread.fraction:>6.1%}")
    if result.engine_stats:
        pairs = ", ".join(f"{k}={v}" for k, v in result.engine_stats.items())
        print(f"engine: {pairs}")
    return 0


def main(argv) -> int:
    if len(argv) >= 2 and argv[0] == "info":
        return _info(argv[1])
    if len(argv) >= 2 and argv[0] == "lint":
        epoch_size = 4096
        as_json = False
        checkpoint_path: Optional[str] = None
        for opt in argv[2:]:
            if opt == "--json":
                as_json = True
            elif opt.startswith("--checkpoint="):
                checkpoint_path = opt[len("--checkpoint="):]
                if not checkpoint_path:
                    print("--checkpoint expects a path")
                    return 2
            elif opt.startswith("--epoch-size="):
                try:
                    epoch_size = int(opt[len("--epoch-size="):])
                except ValueError:
                    print(f"--epoch-size expects an integer, got {opt!r}")
                    return 2
                if epoch_size < 1:
                    print(f"--epoch-size must be >= 1, got {epoch_size}")
                    return 2
            else:
                print(f"unknown option {opt!r}")
                return 2
        return _lint(
            argv[1],
            epoch_size=epoch_size,
            as_json=as_json,
            checkpoint_path=checkpoint_path,
        )
    if len(argv) >= 2 and argv[0] == "slice":
        from ..profiler.criteria import criteria_names

        engine, workers, criteria = "sequential", None, "pixels"
        for opt in argv[2:]:
            if opt.startswith("--engine="):
                engine = opt[len("--engine="):]
            elif opt.startswith("--criteria="):
                criteria = opt[len("--criteria="):]
            elif opt.startswith("--workers="):
                try:
                    workers = int(opt[len("--workers="):])
                except ValueError:
                    print(f"--workers expects an integer, got {opt!r}")
                    return 2
            else:
                print(f"unknown option {opt!r}")
                return 2
        # Validate up front, before the (possibly large) trace is loaded.
        from ..profiler.api import ENGINES

        if engine not in ENGINES:
            print(f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}")
            return 2
        if criteria not in criteria_names():
            print(
                f"unknown criteria {criteria!r}; "
                f"available: {', '.join(criteria_names())}"
            )
            return 2
        if workers is not None and workers < 1:
            print(f"--workers must be >= 1, got {workers}")
            return 2
        try:
            return _slice(argv[1], engine=engine, workers=workers, criteria=criteria)
        except ValueError as err:
            print(f"error: {err}")
            return 2
    if len(argv) >= 3 and argv[0] == "convert":
        fmt, with_index = "v3", True
        for opt in argv[3:]:
            if opt.startswith("--format="):
                fmt = opt[len("--format="):]
            elif opt == "--no-index":
                with_index = False
            else:
                print(f"unknown option {opt!r}")
                return 2
        if fmt not in ("v2", "v3"):
            print(f"unknown format {fmt!r}; expected 'v2' or 'v3'")
            return 2
        try:
            return _convert(argv[1], argv[2], fmt=fmt, with_index=with_index)
        except (ValueError, OSError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
    if len(argv) >= 3 and argv[0] == "collect":
        fmt = "v2"
        for opt in argv[3:]:
            if opt.startswith("--format="):
                fmt = opt[len("--format="):]
            else:
                print(f"unknown option {opt!r}")
                return 2
        if fmt not in ("v2", "v3"):
            print(f"unknown format {fmt!r}; expected 'v2' or 'v3'")
            return 2
        return _collect(argv[1], argv[2], fmt=fmt)
    print(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. `... | head`
        sys.exit(0)
