"""Trace record model.

A trace is a sequence of :class:`TraceRecord` objects, one per dynamically
executed machine instruction, in program (execution) order.  This mirrors
the information the paper's Pin tool collects (Section IV-A): static
information (instruction kind, registers accessed) and dynamic information
(memory addresses accessed, thread id, syscall number).

Memory is modelled at word granularity: each abstract address identifies one
slicer-visible location (a "variable" in the paper's terminology).  The
slicer never needs values, only locations and the dynamic path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Marker-tag prefixes of the synchronization-event convention.  A MARKER
#: record whose tag starts with one of these is a *sync event*, not a data
#: access: its single memory cell identifies the synchronization object
#: (lock, task queue, IPC channel, hand-off token) and its tag encodes the
#: release/acquire direction.  The happens-before race detector
#: (:mod:`repro.tsan`) derives every cross-thread ordering edge from these
#: records; everything else in the trace is treated as plain shared-memory
#: access.
SYNC_MARKER_PREFIX = "sync:"
LOCK_MARKER_PREFIX = "lock:"

LOCK_ACQUIRE_MARKER = "lock:acquire"
LOCK_RELEASE_MARKER = "lock:release"

#: release joins the releasing thread's clock into the object's clock;
#: acquire joins the object's clock into the acquiring thread's clock.
SYNC_RELEASE = "release"
SYNC_ACQUIRE = "acquire"


@dataclass(frozen=True)
class SyncEvent:
    """One parsed synchronization marker.

    Attributes:
        index: record index in the trace.
        tid: thread that executed the sync operation.
        op: ``"release"`` or ``"acquire"``.
        obj: abstract cell identifying the synchronization object.
        kind: edge family — ``"lock"`` for mutual-exclusion locks,
            ``"ipc"`` for channel edges, ``"task"`` for scheduler edges,
            ``"plain"`` for bare hand-off tokens (thread-pool dispatch).
    """

    index: int
    tid: int
    op: str
    obj: int
    kind: str


def sync_marker_tag(op: str, kind: Optional[str] = None) -> str:
    """Compose the marker tag for a sync event (inverse of parsing)."""
    if op not in (SYNC_RELEASE, SYNC_ACQUIRE):
        raise ValueError(f"sync op must be release/acquire, got {op!r}")
    if kind is None or kind == "plain":
        return f"{SYNC_MARKER_PREFIX}{op}"
    if kind == "lock":
        return f"{LOCK_MARKER_PREFIX}{op}"
    return f"{SYNC_MARKER_PREFIX}{kind}:{op}"


def is_sync_marker(record: "TraceRecord") -> bool:
    """True for MARKER records following the sync/lock tag convention."""
    return (
        record.kind == InstrKind.MARKER
        and record.marker is not None
        and (
            record.marker.startswith(SYNC_MARKER_PREFIX)
            or record.marker.startswith(LOCK_MARKER_PREFIX)
        )
    )


def sync_event_of(index: int, record: "TraceRecord") -> Optional[SyncEvent]:
    """Parse a record into a :class:`SyncEvent`, or None for non-sync records.

    Malformed sync markers (unknown op, no object cell) return None; the
    trace sanitizer's ``lock-discipline`` check reports them loudly.
    """
    if not is_sync_marker(record):
        return None
    tag = record.marker or ""
    if tag.startswith(LOCK_MARKER_PREFIX):
        kind, op = "lock", tag[len(LOCK_MARKER_PREFIX):]
    else:
        rest = tag[len(SYNC_MARKER_PREFIX):]
        if ":" in rest:
            kind, op = rest.split(":", 1)
        else:
            kind, op = "plain", rest
    if op not in (SYNC_RELEASE, SYNC_ACQUIRE) or len(record.mem_read) != 1:
        return None
    return SyncEvent(
        index=index, tid=record.tid, op=op, obj=record.mem_read[0], kind=kind
    )


#: Marker tags bracketing one frame of the incremental render pipeline.
#: The tracer emits FRAME_BEGIN when the engine starts producing a frame
#: (BeginMainFrame / scroll handling) and FRAME_END right after that
#: frame's draw; the span of records between them is the frame's trace
#: epoch.  The "frame:" prefix is disjoint from the sync/lock prefixes, so
#: frame markers are never mistaken for happens-before edges.
FRAME_BEGIN_MARKER = "frame:begin"
FRAME_END_MARKER = "frame:end"


@dataclass
class FrameSpan:
    """One rendered frame's extent in the trace (metadata side channel).

    Attributes:
        frame_id: 0-based frame number, strictly increasing per trace.
        kind: what produced the frame — ``"load"`` (the first full
            render), ``"update"`` (an invalidation-driven re-render), or
            ``"scroll"`` (a compositor-thread scroll redraw).
        begin: record index of the FRAME_BEGIN marker.
        end: record index of the FRAME_END marker (``None`` while the
            frame is still open during collection).
    """

    frame_id: int
    kind: str
    begin: int
    end: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.end is not None

    def n_records(self) -> int:
        """Number of records in the frame span, markers included."""
        if self.end is None:
            return 0
        return self.end - self.begin + 1


class InstrKind(enum.IntEnum):
    """Kind of a dynamically executed instruction.

    The kinds match what the paper's forward/backward passes need to
    distinguish: ordinary data operations, compare (flag-setting)
    operations, conditional branches, call/return pairs (function boundary
    detection), system calls, and the special marker instruction
    (``xchg %r13w, %r13w`` in the paper) used to anchor pixel-buffer
    slicing criteria.
    """

    OP = 0
    CMP = 1
    BRANCH = 2
    CALL = 3
    RET = 4
    SYSCALL = 5
    MARKER = 6


#: Empty tuple singletons used to keep record construction cheap.
NO_REGS: Tuple[int, ...] = ()
NO_MEM: Tuple[int, ...] = ()


@dataclass(frozen=True)
class TraceRecord:
    """One dynamically executed instruction.

    Attributes:
        tid: id of the thread that executed the instruction.
        pc: static program counter.  Stable per (function, emit-site), so
            repeated executions of the same static instruction share a pc.
        kind: the :class:`InstrKind`.
        fn: symbol id of the enclosing function (see
            :class:`repro.trace.symbols.SymbolTable`).
        regs_read: architectural registers read (per-thread context).
        regs_written: architectural registers written.
        mem_read: abstract word addresses read.
        mem_written: abstract word addresses written.
        syscall: syscall number for ``SYSCALL`` records, else ``None``.
        marker: marker tag for ``MARKER`` records, else ``None``.  Used by
            slicing criteria to find the program points of interest.
    """

    tid: int
    pc: int
    kind: InstrKind
    fn: int
    regs_read: Tuple[int, ...] = NO_REGS
    regs_written: Tuple[int, ...] = NO_REGS
    mem_read: Tuple[int, ...] = NO_MEM
    mem_written: Tuple[int, ...] = NO_MEM
    syscall: Optional[int] = None
    marker: Optional[str] = None

    def touches_memory(self) -> bool:
        """Return True if the instruction accesses any memory location."""
        return bool(self.mem_read or self.mem_written)


@dataclass
class TraceMetadata:
    """Side information accompanying a trace.

    The paper stores the pixel-buffer addresses and marker points in an
    external file written by the modified ``PlaybackToMemory``; this class
    is the equivalent side channel.

    Attributes:
        thread_names: tid -> human-readable role ("CrRendererMain",
            "Compositor", "CompositorTileWorker1", ...).
        tile_buffers: list of (record_index, tuple-of-pixel-cell-addresses)
            captured each time a finished tile was written (one entry per
            MARKER occurrence, in trace order).
        load_complete_index: record index at which the page finished
            loading (used for the Bing partial-slice experiment).
        frames: list of :class:`FrameSpan`, one per rendered frame, in
            frame-id order (the incremental pipeline's frame epochs).
        notes: free-form annotations (workload name, viewport, ...).
    """

    thread_names: dict = field(default_factory=dict)
    tile_buffers: list = field(default_factory=list)
    load_complete_index: Optional[int] = None
    frames: list = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def main_thread_id(self) -> Optional[int]:
        """Return the tid of the renderer main thread, if known."""
        for tid, name in self.thread_names.items():
            if name == "CrRendererMain":
                return tid
        return None

    def thread_ids_by_role(self, prefix: str) -> list:
        """Return tids whose role name starts with ``prefix``, sorted."""
        return sorted(
            tid for tid, name in self.thread_names.items() if name.startswith(prefix)
        )

    def complete_frames(self) -> list:
        """Frame spans that have both begin and end markers, in order."""
        return [span for span in self.frames if span.complete]
