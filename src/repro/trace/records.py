"""Trace record model.

A trace is a sequence of :class:`TraceRecord` objects, one per dynamically
executed machine instruction, in program (execution) order.  This mirrors
the information the paper's Pin tool collects (Section IV-A): static
information (instruction kind, registers accessed) and dynamic information
(memory addresses accessed, thread id, syscall number).

Memory is modelled at word granularity: each abstract address identifies one
slicer-visible location (a "variable" in the paper's terminology).  The
slicer never needs values, only locations and the dynamic path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class InstrKind(enum.IntEnum):
    """Kind of a dynamically executed instruction.

    The kinds match what the paper's forward/backward passes need to
    distinguish: ordinary data operations, compare (flag-setting)
    operations, conditional branches, call/return pairs (function boundary
    detection), system calls, and the special marker instruction
    (``xchg %r13w, %r13w`` in the paper) used to anchor pixel-buffer
    slicing criteria.
    """

    OP = 0
    CMP = 1
    BRANCH = 2
    CALL = 3
    RET = 4
    SYSCALL = 5
    MARKER = 6


#: Empty tuple singletons used to keep record construction cheap.
NO_REGS: Tuple[int, ...] = ()
NO_MEM: Tuple[int, ...] = ()


@dataclass(frozen=True)
class TraceRecord:
    """One dynamically executed instruction.

    Attributes:
        tid: id of the thread that executed the instruction.
        pc: static program counter.  Stable per (function, emit-site), so
            repeated executions of the same static instruction share a pc.
        kind: the :class:`InstrKind`.
        fn: symbol id of the enclosing function (see
            :class:`repro.trace.symbols.SymbolTable`).
        regs_read: architectural registers read (per-thread context).
        regs_written: architectural registers written.
        mem_read: abstract word addresses read.
        mem_written: abstract word addresses written.
        syscall: syscall number for ``SYSCALL`` records, else ``None``.
        marker: marker tag for ``MARKER`` records, else ``None``.  Used by
            slicing criteria to find the program points of interest.
    """

    tid: int
    pc: int
    kind: InstrKind
    fn: int
    regs_read: Tuple[int, ...] = NO_REGS
    regs_written: Tuple[int, ...] = NO_REGS
    mem_read: Tuple[int, ...] = NO_MEM
    mem_written: Tuple[int, ...] = NO_MEM
    syscall: Optional[int] = None
    marker: Optional[str] = None

    def touches_memory(self) -> bool:
        """Return True if the instruction accesses any memory location."""
        return bool(self.mem_read or self.mem_written)


@dataclass
class TraceMetadata:
    """Side information accompanying a trace.

    The paper stores the pixel-buffer addresses and marker points in an
    external file written by the modified ``PlaybackToMemory``; this class
    is the equivalent side channel.

    Attributes:
        thread_names: tid -> human-readable role ("CrRendererMain",
            "Compositor", "CompositorTileWorker1", ...).
        tile_buffers: list of (record_index, tuple-of-pixel-cell-addresses)
            captured each time a finished tile was written (one entry per
            MARKER occurrence, in trace order).
        load_complete_index: record index at which the page finished
            loading (used for the Bing partial-slice experiment).
        notes: free-form annotations (workload name, viewport, ...).
    """

    thread_names: dict = field(default_factory=dict)
    tile_buffers: list = field(default_factory=list)
    load_complete_index: Optional[int] = None
    notes: dict = field(default_factory=dict)

    def main_thread_id(self) -> Optional[int]:
        """Return the tid of the renderer main thread, if known."""
        for tid, name in self.thread_names.items():
            if name == "CrRendererMain":
                return tid
        return None

    def thread_ids_by_role(self, prefix: str) -> list:
        """Return tids whose role name starts with ``prefix``, sorted."""
        return sorted(
            tid for tid, name in self.thread_names.items() if name.startswith(prefix)
        )
