"""Function symbol table.

The paper categorizes unnecessary computations by examining the *namespace*
of the function each non-slice instruction belongs to, using the symbol
table stored in the application binary (Section V-B).  Our symbol table maps
a dense integer symbol id to a fully qualified function name such as
``"v8::Parser::ParseFunctionLiteral"``; the namespace is everything before
the last ``::`` component.

Functions without a namespace (plain C-style names) are *uncategorizable*,
which is how the paper ends up categorizing only 53-74% of non-slice
instructions per benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class SymbolTable:
    """Bidirectional mapping between symbol ids and function names."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[Tuple[int, str]]:
        return iter(enumerate(self._names))

    def intern(self, name: str) -> int:
        """Return the id for ``name``, creating it if needed."""
        sym = self._ids.get(name)
        if sym is None:
            sym = len(self._names)
            self._names.append(name)
            self._ids[name] = sym
        return sym

    def name(self, sym: int) -> str:
        """Return the fully qualified function name for a symbol id."""
        return self._names[sym]

    def lookup(self, name: str) -> Optional[int]:
        """Return the id for ``name`` or ``None`` if not interned."""
        return self._ids.get(name)

    def namespace(self, sym: int) -> Optional[str]:
        """Return the namespace of a symbol, or ``None`` if it has none.

        The namespace is the qualified prefix before the final ``::``.
        ``"cc::TileManager::ScheduleTasks"`` -> ``"cc::TileManager"``;
        ``"memcpy"`` -> ``None``.
        """
        name = self._names[sym]
        idx = name.rfind("::")
        if idx < 0:
            return None
        return name[:idx]

    def top_level_namespace(self, sym: int) -> Optional[str]:
        """Return the outermost namespace component, or ``None``.

        ``"v8::internal::Heap::Allocate"`` -> ``"v8"``.
        """
        name = self._names[sym]
        idx = name.find("::")
        if idx < 0:
            return None
        return name[:idx]
