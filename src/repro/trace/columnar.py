"""UCWA3: columnar (struct-of-arrays) trace format.

The row-oriented UCWA1/2 encodings interleave every record's fields, so
any analysis pays full per-record Python decode costs even when it only
needs one column.  UCWA3 stores the same logical trace as flat typed
arrays — one array per fixed-width field, plus shared offset+value pools
for the variable-length operand lists — so the vectorized slicer
(:mod:`repro.profiler.vectorized`) can run batch array joins instead of
per-record dict chasing, and epoch sharding hands workers zero-copy array
views.

File layout::

    b"UCWA3\\n"
    u32 section_count
    section_count x (4-byte tag, u64 offset, u64 length)   # section table
    ... section payloads ...

Sections (offsets absolute, lengths exact; unknown tags are ignored so
the format is forward-extensible):

==========  ==========================================================
``SYMS``    symbol names, intern order (u32 count; u16 len + utf-8 each)
``MRKS``    marker names, first-use order (u32 count; u16 len + utf-8)
``CORE``    u64 n_records + 6 adaptive-width arrays: tid, pc, kind, fn,
            syscall+1 (0 = none), marker_id+1 (0 = none)
``REGR``    per-record regs-read counts array + flat values array
``REGW``    same for regs written
``MEMR``    per-record mem-read counts array + flat address array
``MEMW``    same for mem written
``META``    metadata tail, byte-identical to the canonical UCWA2
            metadata encoding (thread names, tile buffers,
            load-complete index, frame spans)
``INVT``    *derived, optional*: per-record invocation id + per-
            invocation CALL/RET indices and function symbol
``EDGE``    *derived, optional*: the default-options dependence-edge
            stream, sorted by descending source record
==========  ==========================================================

Arrays use an adaptive integer width (u8/u16/u32/u64, whichever fits the
maximum value), which keeps a v3 file at or below its v2 size even with
the derived sections included.  Every array is decoded zero-copy with
``np.frombuffer`` over one ``mmap`` of the file, so loading is O(sections)
and epoch slicing is pure array slicing.

The ``INVT``/``EDGE`` sections cache what the vectorized slicer would
otherwise derive on first use (see
:func:`repro.profiler.vectorized.attach_index`); they are excluded from
:func:`repro.trace.store.trace_digest`, which always hashes the canonical
UCWA2 image — so digests are format-invariant and service cache keys do
not churn when a trace is converted.
"""

from __future__ import annotations

import mmap
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .records import FrameSpan, InstrKind, TraceRecord, TraceMetadata
from .store import (
    TraceStore,
    _Cursor,
    _encode_metadata,
    _HEADER_V3,
    _RecordWalker,
    epoch_bounds,
)
from .symbols import SymbolTable

_SECTION = struct.Struct("<4sQQ")  # tag, absolute offset, length
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_ARR_HEAD = struct.Struct("<BQ")  # width code, element count

_DTYPES: Dict[int, type] = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}

#: Sections a well-formed v3 file must carry (derived sections are optional).
_REQUIRED = (b"SYMS", b"MRKS", b"CORE", b"REGR", b"REGW", b"MEMR", b"MEMW", b"META")


def _pack_array(values: np.ndarray) -> bytes:
    """Encode an integer array at the narrowest width that fits it."""
    maxv = int(values.max()) if len(values) else 0
    if maxv < (1 << 8):
        width = 1
    elif maxv < (1 << 16):
        width = 2
    elif maxv < (1 << 32):
        width = 4
    else:
        width = 8
    arr = np.ascontiguousarray(values, dtype=_DTYPES[width])
    return _ARR_HEAD.pack(width, len(arr)) + arr.tobytes()


class _SectionCursor:
    """Bounds-checked reader over one section's buffer slice."""

    def __init__(self, buf, start: int, end: int, label: str) -> None:
        self.buf = buf
        self.pos = start
        self.end = end
        self.label = label

    def _need(self, n: int) -> None:
        if self.pos + n > self.end:
            raise ValueError(
                f"{self.label}: truncated section "
                f"(need {n} bytes at offset {self.pos}, section ends at {self.end})"
            )

    def take(self, st: struct.Struct):
        self._need(st.size)
        values = st.unpack_from(self.buf, self.pos)
        self.pos += st.size
        return values

    def take_bytes(self, n: int) -> bytes:
        self._need(n)
        raw = bytes(self.buf[self.pos : self.pos + n])
        self.pos += n
        return raw

    def take_array(self) -> np.ndarray:
        width, count = self.take(_ARR_HEAD)
        dtype = _DTYPES.get(width)
        if dtype is None:
            raise ValueError(
                f"{self.label}: bad array width code {width} at offset {self.pos}"
            )
        nbytes = width * count
        self._need(nbytes)
        arr = np.frombuffer(self.buf, dtype=dtype, count=count, offset=self.pos)
        self.pos += nbytes
        return arr


@dataclass
class SliceIndex:
    """Derived dependence structure cached in a v3 file (``INVT``/``EDGE``).

    Attributes:
        inv_id: per-record invocation id (-1 for none; RETs carry the
            invocation they close).
        inv_call: per-invocation CALL record index (-1 when the call lies
            before the trace window / thread root).
        inv_ret: per-invocation RET record index (-1 when truncated).
        inv_fn: per-invocation function symbol (-1 when never observed).
        edge_src: dependence-edge source record indices, **descending**.
        edge_tgt: matching targets; every target is strictly below its
            source, which is what makes the single-pass closure sweep of
            the vectorized engine correct.

    The edge stream is the *default-options* stream (control and
    call-site dependences enabled, merged with data/register edges and
    deduplicated); ablation runs rebuild their own stream from columns.
    """

    inv_id: np.ndarray
    inv_call: np.ndarray
    inv_ret: np.ndarray
    inv_fn: np.ndarray
    edge_src: np.ndarray
    edge_tgt: np.ndarray

    def n_edges(self) -> int:
        return len(self.edge_src)


class ColumnarTrace:
    """A trace as flat typed arrays (the UCWA3 in-memory model).

    Satisfies the read-side :class:`~repro.trace.store.TraceStore` API the
    profiler stack consumes — ``forward()``, ``records()``, ``span()``,
    indexing, ``metadata``, ``symbols`` — by materializing
    :class:`TraceRecord` objects on demand, while exposing the raw columns
    (``tid``, ``pc``, ``kind``, ``fn`` …) and operand pools for vectorized
    consumers.  Columns loaded from disk are read-only views into the
    file's mmap.
    """

    def __init__(
        self,
        symbols: SymbolTable,
        metadata: TraceMetadata,
        markers: List[str],
        tid: np.ndarray,
        pc: np.ndarray,
        kind: np.ndarray,
        fn: np.ndarray,
        syscall1: np.ndarray,
        marker1: np.ndarray,
        rr_off: np.ndarray,
        rr: np.ndarray,
        rw_off: np.ndarray,
        rw: np.ndarray,
        mr_off: np.ndarray,
        mr: np.ndarray,
        mw_off: np.ndarray,
        mw: np.ndarray,
        index: Optional[SliceIndex] = None,
        source_path: Optional[str] = None,
    ) -> None:
        self.symbols = symbols
        self.metadata = metadata
        self.markers = markers
        self.tid = tid
        self.pc = pc
        self.kind = kind
        self.fn = fn
        self.syscall1 = syscall1
        self.marker1 = marker1
        self.rr_off = rr_off
        self.rr = rr
        self.rw_off = rw_off
        self.rw = rw
        self.mr_off = mr_off
        self.mr = mr
        self.mw_off = mw_off
        self.mw = mw
        self.index = index
        self.source_path = source_path
        self._materialized: Optional[List[TraceRecord]] = None
        #: lazily built nearest-preceding-writer tables (see
        #: repro.profiler.vectorized); cached per trace because they are
        #: criteria-independent.
        self._writer_tables: Dict[str, tuple] = {}

    # -- core protocol -------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.tid)

    def _record_at(self, i: int) -> TraceRecord:
        syscall1 = int(self.syscall1[i])
        marker1 = int(self.marker1[i])
        return TraceRecord(
            tid=int(self.tid[i]),
            pc=int(self.pc[i]),
            kind=InstrKind(int(self.kind[i])),
            fn=int(self.fn[i]),
            regs_read=tuple(
                self.rr[self.rr_off[i] : self.rr_off[i + 1]].tolist()
            ),
            regs_written=tuple(
                self.rw[self.rw_off[i] : self.rw_off[i + 1]].tolist()
            ),
            mem_read=tuple(self.mr[self.mr_off[i] : self.mr_off[i + 1]].tolist()),
            mem_written=tuple(
                self.mw[self.mw_off[i] : self.mw_off[i + 1]].tolist()
            ),
            syscall=None if syscall1 == 0 else syscall1 - 1,
            marker=None if marker1 == 0 else self.markers[marker1 - 1],
        )

    def __getitem__(self, i: int) -> TraceRecord:
        if self._materialized is not None:
            return self._materialized[i]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return self._record_at(i)

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        """Materialize records ``[lo, hi)`` from column views (batch path).

        One ``.tolist()`` per column slice instead of per-record numpy
        scalar indexing; this is what the parallel engine's epoch workers
        call on their ``[lo, hi)`` array views.
        """
        if self._materialized is not None:
            return self._materialized[lo:hi]
        tids = self.tid[lo:hi].tolist()
        pcs = self.pc[lo:hi].tolist()
        kinds = self.kind[lo:hi].tolist()
        fns = self.fn[lo:hi].tolist()
        sys1 = self.syscall1[lo:hi].tolist()
        mk1 = self.marker1[lo:hi].tolist()
        rr_off = self.rr_off[lo : hi + 1].tolist()
        rw_off = self.rw_off[lo : hi + 1].tolist()
        mr_off = self.mr_off[lo : hi + 1].tolist()
        mw_off = self.mw_off[lo : hi + 1].tolist()
        rr = self.rr[rr_off[0] : rr_off[-1]].tolist()
        rw = self.rw[rw_off[0] : rw_off[-1]].tolist()
        mr = self.mr[mr_off[0] : mr_off[-1]].tolist()
        mw = self.mw[mw_off[0] : mw_off[-1]].tolist()
        rr0, rw0, mr0, mw0 = rr_off[0], rw_off[0], mr_off[0], mw_off[0]
        markers = self.markers
        kind_of = InstrKind
        out: List[TraceRecord] = []
        for j in range(hi - lo):
            out.append(
                TraceRecord(
                    tid=tids[j],
                    pc=pcs[j],
                    kind=kind_of(kinds[j]),
                    fn=fns[j],
                    regs_read=tuple(rr[rr_off[j] - rr0 : rr_off[j + 1] - rr0]),
                    regs_written=tuple(rw[rw_off[j] - rw0 : rw_off[j + 1] - rw0]),
                    mem_read=tuple(mr[mr_off[j] - mr0 : mr_off[j + 1] - mr0]),
                    mem_written=tuple(mw[mw_off[j] - mw0 : mw_off[j + 1] - mw0]),
                    syscall=None if sys1[j] == 0 else sys1[j] - 1,
                    marker=None if mk1[j] == 0 else markers[mk1[j] - 1],
                )
            )
        return out

    def records(self) -> List[TraceRecord]:
        """Full materialized record list (cached after first call)."""
        if self._materialized is None:
            self._materialized = self.span(0, len(self))
        return self._materialized

    def forward(self) -> Iterator[TraceRecord]:
        """Iterate records in execution order (materializing in batches)."""
        if self._materialized is not None:
            return iter(self._materialized)
        return self._forward_batched()

    def _forward_batched(self, batch: int = 8192) -> Iterator[TraceRecord]:
        for lo, hi in epoch_bounds(len(self), batch):
            yield from self.span(lo, hi)

    def backward(self) -> Iterator[TraceRecord]:
        return reversed(self.records())

    def iter_epochs(
        self, epoch_size: int
    ) -> Iterator[Tuple[int, int, List[TraceRecord]]]:
        for lo, hi in epoch_bounds(len(self), epoch_size):
            yield lo, hi, self.span(lo, hi)

    def thread_ids(self) -> List[int]:
        return np.unique(self.tid).tolist()

    def frame_spans(self) -> List[FrameSpan]:
        return self.metadata.complete_frames()

    def instructions_per_thread(self) -> dict:
        utid, counts = np.unique(self.tid, return_counts=True)
        return dict(zip(utid.tolist(), counts.tolist()))

    def thread_slice_counts(self, flags) -> Tuple[dict, dict]:
        """Vectorized per-thread (total, in-slice) record counts.

        Fast path for :func:`repro.profiler.stats.compute_statistics`:
        two ``bincount`` calls instead of a Python pass over every record.
        """
        utid, inverse, counts = np.unique(
            self.tid, return_inverse=True, return_counts=True
        )
        tids = utid.tolist()
        totals = dict(zip(tids, counts.tolist()))
        flagged = np.frombuffer(bytes(flags), dtype=np.uint8).astype(bool)
        in_slice = np.bincount(inverse[flagged], minlength=len(utid))
        sliced = {
            tid: int(count)
            for tid, count in zip(tids, in_slice.tolist())
            if count
        }
        return totals, sliced

    # -- conversions ---------------------------------------------------- #

    @staticmethod
    def from_store(store: TraceStore) -> "ColumnarTrace":
        """Build columns from an in-memory row store.

        Marker ids are assigned in first-use order — the same rule as the
        canonical serializer — so a v2 → v3 → v2 round trip is
        byte-identical.
        """
        records = store.records()
        n = len(records)
        tid = np.fromiter((r.tid for r in records), np.int64, n)
        pc = np.fromiter((r.pc for r in records), np.uint64, n)
        kind = np.fromiter((int(r.kind) for r in records), np.uint8, n)
        fn = np.fromiter((r.fn for r in records), np.int64, n)
        syscall1 = np.fromiter(
            (0 if r.syscall is None else r.syscall + 1 for r in records),
            np.int64,
            n,
        )
        markers: List[str] = []
        marker_ids: Dict[str, int] = {}
        marker1 = np.zeros(n, np.int64)
        for i, r in enumerate(records):
            if r.marker is not None:
                mid = marker_ids.get(r.marker)
                if mid is None:
                    mid = len(markers)
                    markers.append(r.marker)
                    marker_ids[r.marker] = mid
                marker1[i] = mid + 1

        def pool(getter, dtype):
            counts = np.fromiter((len(getter(r)) for r in records), np.int64, n)
            off = np.zeros(n + 1, np.int64)
            np.cumsum(counts, out=off[1:])
            flat = np.fromiter(
                (v for r in records for v in getter(r)), dtype, int(off[-1])
            )
            return off, flat

        rr_off, rr = pool(lambda r: r.regs_read, np.uint8)
        rw_off, rw = pool(lambda r: r.regs_written, np.uint8)
        mr_off, mr = pool(lambda r: r.mem_read, np.uint64)
        mw_off, mw = pool(lambda r: r.mem_written, np.uint64)
        return ColumnarTrace(
            symbols=store.symbols,
            metadata=store.metadata,
            markers=markers,
            tid=tid,
            pc=pc,
            kind=kind,
            fn=fn,
            syscall1=syscall1,
            marker1=marker1,
            rr_off=rr_off,
            rr=rr,
            rw_off=rw_off,
            rw=rw,
            mr_off=mr_off,
            mr=mr,
            mw_off=mw_off,
            mw=mw,
        )

    def to_store(self) -> TraceStore:
        """Materialize a row-oriented :class:`TraceStore` (shares symbols
        and metadata objects with this trace)."""
        store = TraceStore(self.symbols, self.metadata)
        store.extend(self.records())
        return store


# --------------------------------------------------------------------- #
# Writer                                                                #
# --------------------------------------------------------------------- #


def _encode_names(names: List[str], count_st: struct.Struct) -> bytes:
    chunks = [count_st.pack(len(names))]
    for name in names:
        raw = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(raw)) + raw)
    return b"".join(chunks)


def serialize_columnar(trace: ColumnarTrace) -> bytes:
    """UCWA3 byte image of a columnar trace (index sections if attached)."""
    n = len(trace)
    counts = lambda off: np.diff(off)  # noqa: E731 - tiny local helper

    sections: List[Tuple[bytes, bytes]] = [
        (b"SYMS", _encode_names([name for _, name in trace.symbols], _U32)),
        (b"MRKS", _encode_names(trace.markers, _U32)),
        (
            b"CORE",
            _U64.pack(n)
            + _pack_array(trace.tid)
            + _pack_array(trace.pc)
            + _pack_array(trace.kind)
            + _pack_array(trace.fn)
            + _pack_array(trace.syscall1)
            + _pack_array(trace.marker1),
        ),
        (b"REGR", _pack_array(counts(trace.rr_off)) + _pack_array(trace.rr)),
        (b"REGW", _pack_array(counts(trace.rw_off)) + _pack_array(trace.rw)),
        (b"MEMR", _pack_array(counts(trace.mr_off)) + _pack_array(trace.mr)),
        (b"MEMW", _pack_array(counts(trace.mw_off)) + _pack_array(trace.mw)),
        (b"META", _encode_metadata(trace.metadata)),
    ]

    index = trace.index
    if index is not None:
        sections.append(
            (
                b"INVT",
                _U64.pack(n)
                + _pack_array(index.inv_id + 1)
                + _U64.pack(len(index.inv_call))
                + _pack_array(index.inv_call + 1)
                + _pack_array(index.inv_ret + 1)
                + _pack_array(index.inv_fn + 1),
            )
        )
        # Edge stream: per-source counts (ascending source order) plus
        # source-minus-target deltas in the stored (descending-source)
        # stream order.  Deltas are strictly positive because every edge
        # points to a lower index, so they pack tighter than raw targets.
        edge_counts = np.bincount(
            index.edge_src, minlength=n
        ) if n else np.zeros(0, np.int64)
        deltas = index.edge_src - index.edge_tgt
        sections.append(
            (
                b"EDGE",
                _U64.pack(n)
                + _U64.pack(len(index.edge_src))
                + _pack_array(edge_counts)
                + _pack_array(deltas),
            )
        )

    header = bytearray(_HEADER_V3)
    header += _U32.pack(len(sections))
    table_pos = len(header)
    header += b"\x00" * (_SECTION.size * len(sections))
    offset = len(header)
    payloads: List[bytes] = []
    for i, (tag, payload) in enumerate(sections):
        _SECTION.pack_into(header, table_pos + i * _SECTION.size, tag, offset, len(payload))
        payloads.append(payload)
        offset += len(payload)
    return bytes(header) + b"".join(payloads)


def save_columnar(trace: ColumnarTrace, path: Union[str, Path]) -> None:
    """Write a trace in UCWA3 form."""
    Path(path).write_bytes(serialize_columnar(trace))


# --------------------------------------------------------------------- #
# Reader                                                                #
# --------------------------------------------------------------------- #


def _read_section_table(buf, size: int, path: str) -> Dict[bytes, Tuple[int, int]]:
    if size < len(_HEADER_V3) or bytes(buf[: len(_HEADER_V3)]) != _HEADER_V3:
        raise ValueError(f"{path}: not a UCWA trace file")
    pos = len(_HEADER_V3)
    if pos + _U32.size > size:
        raise ValueError(f"{path}: truncated section table")
    (n_sections,) = _U32.unpack_from(buf, pos)
    pos += _U32.size
    table_end = pos + n_sections * _SECTION.size
    if table_end > size:
        raise ValueError(
            f"{path}: truncated section table "
            f"({n_sections} sections declared, file is {size} bytes)"
        )
    table: Dict[bytes, Tuple[int, int]] = {}
    for i in range(n_sections):
        tag, offset, length = _SECTION.unpack_from(buf, pos + i * _SECTION.size)
        if offset + length > size or offset < table_end:
            raise ValueError(
                f"{path}: section {tag.decode('ascii', 'replace')!r} "
                f"has bad extent (offset={offset}, length={length}, "
                f"file size={size})"
            )
        table[tag] = (offset, length)
    for tag in _REQUIRED:
        if tag not in table:
            raise ValueError(
                f"{path}: missing required section {tag.decode('ascii')!r}"
            )
    return table


def _decode_names(cur: _SectionCursor) -> List[str]:
    (count,) = cur.take(_U32)
    names: List[str] = []
    for _ in range(count):
        (length,) = cur.take(struct.Struct("<H"))
        names.append(cur.take_bytes(length).decode("utf-8"))
    return names


def _offsets(counts: np.ndarray) -> np.ndarray:
    off = np.zeros(len(counts) + 1, np.int64)
    np.cumsum(counts, out=off[1:])
    return off


def _pool_sections(cur: _SectionCursor, n: int, tag: str, path: str):
    counts = cur.take_array()
    if len(counts) != n:
        raise ValueError(
            f"{path}: section {tag} holds {len(counts)} counts "
            f"for {n} records"
        )
    off = _offsets(counts)
    flat = cur.take_array()
    if len(flat) != int(off[-1]):
        raise ValueError(
            f"{path}: section {tag} pool length {len(flat)} "
            f"!= counts total {int(off[-1])}"
        )
    return off, flat


def parse_columnar(buf, path: str = "<bytes>") -> ColumnarTrace:
    """Decode a UCWA3 image from a buffer (bytes or mmap), zero-copy."""
    size = len(buf)
    table = _read_section_table(buf, size, path)

    def section(tag: bytes) -> _SectionCursor:
        offset, length = table[tag]
        return _SectionCursor(
            buf, offset, offset + length, f"{path}[{tag.decode('ascii')}]"
        )

    symbols = SymbolTable()
    for name in _decode_names(section(b"SYMS")):
        symbols.intern(name)
    markers = _decode_names(section(b"MRKS"))

    core = section(b"CORE")
    (n,) = core.take(_U64)
    tid = core.take_array()
    pc = core.take_array()
    kind = core.take_array()
    fn = core.take_array()
    syscall1 = core.take_array()
    marker1 = core.take_array()
    for name, col in (
        ("tid", tid), ("pc", pc), ("kind", kind),
        ("fn", fn), ("syscall", syscall1), ("marker", marker1),
    ):
        if len(col) != n:
            raise ValueError(
                f"{path}: CORE column {name} holds {len(col)} values "
                f"for {n} records"
            )

    rr_off, rr = _pool_sections(section(b"REGR"), n, "REGR", path)
    rw_off, rw = _pool_sections(section(b"REGW"), n, "REGW", path)
    mr_off, mr = _pool_sections(section(b"MEMR"), n, "MEMR", path)
    mw_off, mw = _pool_sections(section(b"MEMW"), n, "MEMW", path)

    metadata = TraceMetadata()
    meta_off, meta_len = table[b"META"]
    meta_walker = _Cursor(bytes(buf[meta_off : meta_off + meta_len]), label=path)
    _decode_meta(meta_walker, metadata)

    index: Optional[SliceIndex] = None
    if b"INVT" in table and b"EDGE" in table:
        index = _decode_index(section(b"INVT"), section(b"EDGE"), n, path)

    return ColumnarTrace(
        symbols=symbols,
        metadata=metadata,
        markers=markers,
        tid=tid,
        pc=pc,
        kind=kind,
        fn=fn,
        syscall1=syscall1,
        marker1=marker1,
        rr_off=rr_off,
        rr=rr,
        rw_off=rw_off,
        rw=rw,
        mr_off=mr_off,
        mr=mr,
        mw_off=mw_off,
        mw=mw,
        index=index,
        source_path=None if path == "<bytes>" else path,
    )


def _decode_meta(cur: _Cursor, meta: TraceMetadata) -> None:
    """Decode the META payload (same layout as the v2 metadata tail)."""
    walker = _RecordWalker.__new__(_RecordWalker)
    walker.cur = cur
    walker.has_frames = True
    walker.path = cur.label
    walker.read_metadata(meta)


def _decode_index(
    invt: _SectionCursor, edge: _SectionCursor, n: int, path: str
) -> SliceIndex:
    (n_inv_records,) = invt.take(_U64)
    if n_inv_records != n:
        raise ValueError(
            f"{path}: INVT built for {n_inv_records} records, trace has {n}"
        )
    inv_id = invt.take_array().astype(np.int64) - 1
    if len(inv_id) != n:
        raise ValueError(f"{path}: INVT inv_id holds {len(inv_id)} values for {n} records")
    (n_inv,) = invt.take(_U64)
    inv_call = invt.take_array().astype(np.int64) - 1
    inv_ret = invt.take_array().astype(np.int64) - 1
    inv_fn = invt.take_array().astype(np.int64) - 1
    if not (len(inv_call) == len(inv_ret) == len(inv_fn) == n_inv):
        raise ValueError(f"{path}: INVT invocation arrays disagree on length")

    (n_edge_records,) = edge.take(_U64)
    if n_edge_records != n:
        raise ValueError(
            f"{path}: EDGE built for {n_edge_records} records, trace has {n}"
        )
    (n_edges,) = edge.take(_U64)
    counts = edge.take_array()
    if len(counts) != n:
        raise ValueError(f"{path}: EDGE holds {len(counts)} counts for {n} records")
    if int(counts.sum()) != n_edges:
        raise ValueError(
            f"{path}: EDGE counts total {int(counts.sum())} != {n_edges} edges"
        )
    deltas = edge.take_array()
    if len(deltas) != n_edges:
        raise ValueError(
            f"{path}: EDGE delta array holds {len(deltas)} values for {n_edges} edges"
        )
    # Sources descend in the stored stream; counts are per ascending
    # source, so repeat over the reversed index range.
    src = np.repeat(np.arange(n - 1, -1, -1, dtype=np.int64), counts[::-1])
    tgt = src - deltas.astype(np.int64)
    if n_edges and (int(tgt.min()) < 0 or bool((tgt >= src).any())):
        raise ValueError(f"{path}: EDGE deltas out of range")
    return SliceIndex(
        inv_id=inv_id,
        inv_call=inv_call,
        inv_ret=inv_ret,
        inv_fn=inv_fn,
        edge_src=src,
        edge_tgt=tgt,
    )


def load_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Load a UCWA3 file, mmap-backed: columns are zero-copy views.

    Malformed input — wrong header, truncated file, a section whose
    declared extent runs past the end — raises ``ValueError`` with the
    path in the message.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        try:
            buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:  # zero-length file cannot be mapped
            raise ValueError(f"{path}: not a UCWA trace file (empty)") from None
    trace = parse_columnar(buf, str(path))
    trace.source_path = str(path)
    return trace


def convert_trace(
    src: Union[str, Path],
    dst: Union[str, Path],
    fmt: str = "v3",
    with_index: bool = True,
) -> None:
    """Convert between UCWA formats (the ``trace convert`` subcommand).

    ``fmt="v3"`` re-encodes any readable trace as columnar UCWA3,
    attaching the derived slice index unless ``with_index`` is False;
    ``fmt="v2"`` writes the canonical row encoding (the digest image).
    """
    from .store import load_any_trace, save_trace

    trace = load_any_trace(src)
    if fmt == "v2":
        save_trace(trace, dst)
        return
    if fmt != "v3":
        raise ValueError(f"unknown trace format {fmt!r}; expected 'v2' or 'v3'")
    cols = trace if isinstance(trace, ColumnarTrace) else ColumnarTrace.from_store(trace)
    if with_index and cols.index is None:
        from ..profiler.vectorized import attach_index

        attach_index(cols)
    save_columnar(cols, dst)
