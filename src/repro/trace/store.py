"""Trace storage: in-memory store plus a compact binary file format.

The paper stores instruction traces in stable storage and streams them in a
forward pass and a backward pass.  ``TraceStore`` is the in-memory
equivalent; :func:`save_trace` / :func:`load_trace` provide a durable binary
round trip so traces can be collected once and profiled many times (the
paper notes the computed CDG is likewise reusable across criteria).
"""

from __future__ import annotations

import hashlib
import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from .records import FrameSpan, InstrKind, TraceRecord, TraceMetadata
from .symbols import SymbolTable

# Unnecessary Computations in Web Apps.  v2 appends a frame-span section to
# the metadata (the incremental pipeline's frame epochs); v1 files are still
# readable and simply have no frames.
_HEADER = b"UCWA2\n"
_HEADER_V1 = b"UCWA1\n"
_REC = struct.Struct("<IQBIhh")  # tid, pc, kind, fn, syscall(+1, -1=None), marker id(+1)


class TraceStore:
    """An in-memory instruction trace with its symbol table and metadata."""

    def __init__(
        self, symbols: SymbolTable, metadata: Optional[TraceMetadata] = None
    ) -> None:
        self.symbols = symbols
        self.metadata = metadata if metadata is not None else TraceMetadata()
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self._records[idx]

    def append(self, record: TraceRecord) -> int:
        """Append a record, returning its index in the trace."""
        self._records.append(record)
        return len(self._records) - 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self._records.extend(records)

    def forward(self) -> Iterator[TraceRecord]:
        """Iterate records in execution order (the profiler's forward pass)."""
        return iter(self._records)

    def backward(self) -> Iterator[TraceRecord]:
        """Iterate records in reverse execution order (the backward pass)."""
        return reversed(self._records)

    def records(self) -> List[TraceRecord]:
        """Direct access to the underlying record list (read-only use)."""
        return self._records

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        """Records ``[lo, hi)`` in execution order (one epoch's worth)."""
        return self._records[lo:hi]

    def iter_epochs(
        self, epoch_size: int
    ) -> Iterator[Tuple[int, int, List[TraceRecord]]]:
        """Yield ``(lo, hi, records)`` per epoch, earliest epoch first.

        The epoch-sharded slicer uses this to materialize one epoch at a
        time instead of holding (or shipping) the whole trace; each yield
        covers ``[lo, hi)`` with ``hi - lo <= epoch_size``.
        """
        for lo, hi in epoch_bounds(len(self._records), epoch_size):
            yield lo, hi, self._records[lo:hi]

    def thread_ids(self) -> List[int]:
        """Distinct thread ids present in the trace, sorted."""
        return sorted({r.tid for r in self._records})

    def frame_spans(self) -> List[FrameSpan]:
        """Completed frame spans (incremental pipeline epochs), in order."""
        return self.metadata.complete_frames()

    def instructions_per_thread(self) -> dict:
        """Map tid -> number of records executed by that thread."""
        counts: dict = {}
        for record in self._records:
            counts[record.tid] = counts.get(record.tid, 0) + 1
        return counts


def epoch_bounds(n_records: int, epoch_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_records)`` into ``[lo, hi)`` epochs of ``epoch_size``.

    The final epoch absorbs the remainder, so it may be shorter (never
    longer) than ``epoch_size``.  An empty trace yields no epochs.
    """
    if epoch_size <= 0:
        raise ValueError(f"epoch_size must be positive, got {epoch_size}")
    return [
        (lo, min(lo + epoch_size, n_records))
        for lo in range(0, n_records, epoch_size)
    ]


def _pack_addr_list(addrs) -> bytes:
    return struct.pack("<H", len(addrs)) + struct.pack(f"<{len(addrs)}Q", *addrs)


def serialize_trace(store: TraceStore) -> bytes:
    """Canonical UCWA2 byte image of a trace (records + symbols + metadata).

    The encoding is deterministic for a given store: symbol names are
    emitted in intern order, marker ids are assigned in first-use order,
    and metadata maps are sorted.  :func:`save_trace` writes exactly these
    bytes, and :func:`trace_digest` hashes them, so two stores holding the
    same trace always share one digest.
    """
    markers: List[str] = []
    marker_ids: dict = {}
    chunks: List[bytes] = [_HEADER]

    names = [name for _, name in store.symbols]
    chunks.append(struct.pack("<I", len(names)))
    for name in names:
        raw = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(raw)) + raw)

    chunks.append(struct.pack("<Q", len(store)))
    for rec in store.forward():
        syscall = -1 if rec.syscall is None else rec.syscall
        if rec.marker is None:
            marker_id = -1
        else:
            marker_id = marker_ids.get(rec.marker)
            if marker_id is None:
                marker_id = len(markers)
                markers.append(rec.marker)
                marker_ids[rec.marker] = marker_id
        chunks.append(_REC.pack(rec.tid, rec.pc, int(rec.kind), rec.fn, syscall, marker_id))
        chunks.append(struct.pack("<B", len(rec.regs_read)) + bytes(rec.regs_read))
        chunks.append(struct.pack("<B", len(rec.regs_written)) + bytes(rec.regs_written))
        chunks.append(_pack_addr_list(rec.mem_read))
        chunks.append(_pack_addr_list(rec.mem_written))

    chunks.append(struct.pack("<H", len(markers)))
    for marker in markers:
        raw = marker.encode("utf-8")
        chunks.append(struct.pack("<H", len(raw)) + raw)

    meta = store.metadata
    chunks.append(struct.pack("<H", len(meta.thread_names)))
    for tid, name in sorted(meta.thread_names.items()):
        raw = name.encode("utf-8")
        chunks.append(struct.pack("<IH", tid, len(raw)) + raw)
    chunks.append(struct.pack("<I", len(meta.tile_buffers)))
    for index, cells in meta.tile_buffers:
        chunks.append(struct.pack("<Q", index) + _pack_addr_list(cells))
    load_idx = -1 if meta.load_complete_index is None else meta.load_complete_index
    chunks.append(struct.pack("<q", load_idx))

    chunks.append(struct.pack("<I", len(meta.frames)))
    for span in meta.frames:
        end = -1 if span.end is None else span.end
        raw = span.kind.encode("utf-8")
        chunks.append(struct.pack("<IqqH", span.frame_id, span.begin, end, len(raw)) + raw)

    return b"".join(chunks)


def save_trace(store: TraceStore, path: Union[str, Path]) -> None:
    """Serialize a :class:`TraceStore` (records + symbols + metadata)."""
    Path(path).write_bytes(serialize_trace(store))


def trace_digest(store: TraceStore) -> str:
    """Stable content digest of a trace (hex sha256 of its byte image).

    Used as the content-addressing component of profiling-service cache
    keys: two submits over byte-identical traces share a digest, and any
    change to records, symbols, or metadata produces a new one.
    """
    return hashlib.sha256(serialize_trace(store)).hexdigest()


def file_digest(path: Union[str, Path]) -> str:
    """Hex sha256 of a trace file's raw bytes.

    For an on-disk job this is the cache-key digest: cheaper than parsing
    the trace, and any edit to the file (even a metadata-only one)
    invalidates dependent cache entries.  Note a v1 file and its v2
    re-save hash differently — the digest addresses *bytes*, not the
    decoded record set.
    """
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(block)
    return hasher.hexdigest()


class _Cursor:
    """Tiny sequential unpacker over a bytes object."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, fmt: str):
        st = struct.Struct(fmt)
        values = st.unpack_from(self.data, self.pos)
        self.pos += st.size
        return values

    def take_bytes(self, n: int) -> bytes:
        raw = self.data[self.pos : self.pos + n]
        self.pos += n
        return raw


def load_trace(path: Union[str, Path]) -> TraceStore:
    """Load a trace previously written by :func:`save_trace`."""
    data = Path(path).read_bytes()
    if data.startswith(_HEADER):
        has_frames = True
    elif data.startswith(_HEADER_V1):
        has_frames = False
    else:
        raise ValueError(f"{path}: not a UCWA trace file")
    cur = _Cursor(data[len(_HEADER) :])

    symbols = SymbolTable()
    (n_names,) = cur.take("<I")
    for _ in range(n_names):
        (length,) = cur.take("<H")
        symbols.intern(cur.take_bytes(length).decode("utf-8"))

    (n_records,) = cur.take("<Q")
    raw_records: List[tuple] = []
    for _ in range(n_records):
        tid, pc, kind, fn, syscall, marker_id = cur.take("<IQBIhh")
        (n_rr,) = cur.take("<B")
        regs_read = tuple(cur.take_bytes(n_rr))
        (n_rw,) = cur.take("<B")
        regs_written = tuple(cur.take_bytes(n_rw))
        (n_mr,) = cur.take("<H")
        mem_read = cur.take(f"<{n_mr}Q") if n_mr else ()
        (n_mw,) = cur.take("<H")
        mem_written = cur.take(f"<{n_mw}Q") if n_mw else ()
        raw_records.append(
            (tid, pc, kind, fn, regs_read, regs_written, mem_read, mem_written,
             None if syscall < 0 else syscall, marker_id)
        )

    (n_markers,) = cur.take("<H")
    markers: List[str] = []
    for _ in range(n_markers):
        (length,) = cur.take("<H")
        markers.append(cur.take_bytes(length).decode("utf-8"))

    store = TraceStore(symbols)
    for (tid, pc, kind, fn, regs_read, regs_written, mem_read, mem_written,
         syscall, marker_id) in raw_records:
        store.append(
            TraceRecord(
                tid=tid,
                pc=pc,
                kind=InstrKind(kind),
                fn=fn,
                regs_read=regs_read,
                regs_written=regs_written,
                mem_read=mem_read,
                mem_written=mem_written,
                syscall=syscall,
                marker=None if marker_id < 0 else markers[marker_id],
            )
        )

    meta = store.metadata
    (n_threads,) = cur.take("<H")
    for _ in range(n_threads):
        tid, length = cur.take("<IH")
        meta.thread_names[tid] = cur.take_bytes(length).decode("utf-8")
    (n_tiles,) = cur.take("<I")
    for _ in range(n_tiles):
        (index,) = cur.take("<Q")
        (n_cells,) = cur.take("<H")
        cells = cur.take(f"<{n_cells}Q") if n_cells else ()
        meta.tile_buffers.append((index, tuple(cells)))
    (load_idx,) = cur.take("<q")
    meta.load_complete_index = None if load_idx < 0 else load_idx
    if has_frames:
        (n_frames,) = cur.take("<I")
        for _ in range(n_frames):
            frame_id, begin, end, length = cur.take("<IqqH")
            kind = cur.take_bytes(length).decode("utf-8")
            meta.frames.append(
                FrameSpan(
                    frame_id=frame_id,
                    kind=kind,
                    begin=begin,
                    end=None if end < 0 else end,
                )
            )
    return store


def iter_trace_epochs(
    path: Union[str, Path], epoch_size: int
) -> Iterator[Tuple[int, int, List[TraceRecord]]]:
    """Stream a saved trace epoch by epoch without building a TraceStore.

    Yields ``(lo, hi, records)`` for consecutive ``[lo, hi)`` windows of at
    most ``epoch_size`` records, parsing directly from the file image.  Only
    one epoch's records are materialized at a time, so a trace far larger
    than memory-resident ``TraceStore`` comfort can still be sharded into
    epochs for the parallel slicer.

    The marker-name table lives *after* the record section in the UCWA
    format, so a cheap length-only skip pass locates it first; the second
    pass materializes records with marker names resolved.
    """
    if epoch_size <= 0:
        raise ValueError(f"epoch_size must be positive, got {epoch_size}")
    data = Path(path).read_bytes()
    if not (data.startswith(_HEADER) or data.startswith(_HEADER_V1)):
        raise ValueError(f"{path}: not a UCWA trace file")
    cur = _Cursor(data[len(_HEADER) :])

    (n_names,) = cur.take("<I")
    for _ in range(n_names):
        (length,) = cur.take("<H")
        cur.take_bytes(length)

    (n_records,) = cur.take("<Q")
    records_pos = cur.pos

    # Skip pass: records are variable length, so walk their length fields
    # to find the marker table.
    for _ in range(n_records):
        cur.pos += _REC.size
        (n_rr,) = cur.take("<B")
        cur.pos += n_rr
        (n_rw,) = cur.take("<B")
        cur.pos += n_rw
        (n_mr,) = cur.take("<H")
        cur.pos += 8 * n_mr
        (n_mw,) = cur.take("<H")
        cur.pos += 8 * n_mw

    (n_markers,) = cur.take("<H")
    markers: List[str] = []
    for _ in range(n_markers):
        (length,) = cur.take("<H")
        markers.append(cur.take_bytes(length).decode("utf-8"))

    cur.pos = records_pos
    index = 0
    while index < n_records:
        lo = index
        hi = min(index + epoch_size, n_records)
        chunk: List[TraceRecord] = []
        for _ in range(hi - lo):
            tid, pc, kind, fn, syscall, marker_id = cur.take("<IQBIhh")
            (n_rr,) = cur.take("<B")
            regs_read = tuple(cur.take_bytes(n_rr))
            (n_rw,) = cur.take("<B")
            regs_written = tuple(cur.take_bytes(n_rw))
            (n_mr,) = cur.take("<H")
            mem_read = cur.take(f"<{n_mr}Q") if n_mr else ()
            (n_mw,) = cur.take("<H")
            mem_written = cur.take(f"<{n_mw}Q") if n_mw else ()
            chunk.append(
                TraceRecord(
                    tid=tid,
                    pc=pc,
                    kind=InstrKind(kind),
                    fn=fn,
                    regs_read=regs_read,
                    regs_written=regs_written,
                    mem_read=mem_read,
                    mem_written=mem_written,
                    syscall=None if syscall < 0 else syscall,
                    marker=None if marker_id < 0 else markers[marker_id],
                )
            )
        yield lo, hi, chunk
        index = hi
