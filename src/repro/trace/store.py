"""Trace storage: in-memory store plus a compact binary file format.

The paper stores instruction traces in stable storage and streams them in a
forward pass and a backward pass.  ``TraceStore`` is the in-memory
equivalent; :func:`save_trace` / :func:`load_trace` provide a durable binary
round trip so traces can be collected once and profiled many times (the
paper notes the computed CDG is likewise reusable across criteria).

Three on-disk formats share the ``.ucwa`` extension:

* **UCWA1** — records + symbols + metadata, no frame spans.
* **UCWA2** — UCWA1 plus a frame-span metadata section.  This is the
  *canonical* record-stream encoding: :func:`serialize_trace` always emits
  it and :func:`trace_digest` hashes it, whatever format the trace was
  loaded from.
* **UCWA3** — the columnar struct-of-arrays layout (:mod:`.columnar`),
  holding the same logical content plus optional derived index sections.

:func:`load_any_trace` dispatches on the header; :func:`load_trace` reads
the row-oriented v1/v2 encodings only.

All v1/v2 parsing goes through one shared *section walker*
(:class:`_RecordWalker` + :func:`_read_record` / :func:`_skip_record`), so
the full loader, the epoch streamer's length-only skip pass, and the
columnar converter can never disagree about where a section starts.
"""

from __future__ import annotations

import hashlib
import struct
from pathlib import Path
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
)

from .records import FrameSpan, InstrKind, TraceRecord, TraceMetadata
from .symbols import SymbolTable

# Unnecessary Computations in Web Apps.  v2 appends a frame-span section to
# the metadata (the incremental pipeline's frame epochs); v1 files are still
# readable and simply have no frames.  v3 is the columnar format handled by
# :mod:`repro.trace.columnar`.
_HEADER = b"UCWA2\n"
_HEADER_V1 = b"UCWA1\n"
_HEADER_V3 = b"UCWA3\n"
_REC = struct.Struct("<IQBIhh")  # tid, pc, kind, fn, syscall(+1, -1=None), marker id(+1)


class TraceSource(Protocol):
    """Anything that can stand in for a trace when serializing/hashing.

    Both :class:`TraceStore` and :class:`repro.trace.columnar.ColumnarTrace`
    satisfy this structurally, so :func:`serialize_trace` and
    :func:`trace_digest` accept either — which is what makes the digest
    format-invariant.
    """

    symbols: SymbolTable
    metadata: TraceMetadata

    def __len__(self) -> int: ...

    def forward(self) -> Iterator[TraceRecord]: ...


class TraceStore:
    """An in-memory instruction trace with its symbol table and metadata."""

    def __init__(
        self, symbols: SymbolTable, metadata: Optional[TraceMetadata] = None
    ) -> None:
        self.symbols = symbols
        self.metadata = metadata if metadata is not None else TraceMetadata()
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self._records[idx]

    def append(self, record: TraceRecord) -> int:
        """Append a record, returning its index in the trace."""
        self._records.append(record)
        return len(self._records) - 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self._records.extend(records)

    def forward(self) -> Iterator[TraceRecord]:
        """Iterate records in execution order (the profiler's forward pass)."""
        return iter(self._records)

    def backward(self) -> Iterator[TraceRecord]:
        """Iterate records in reverse execution order (the backward pass)."""
        return reversed(self._records)

    def records(self) -> List[TraceRecord]:
        """Direct access to the underlying record list (read-only use)."""
        return self._records

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        """Records ``[lo, hi)`` in execution order (one epoch's worth)."""
        return self._records[lo:hi]

    def iter_epochs(
        self, epoch_size: int
    ) -> Iterator[Tuple[int, int, List[TraceRecord]]]:
        """Yield ``(lo, hi, records)`` per epoch, earliest epoch first.

        The epoch-sharded slicer uses this to materialize one epoch at a
        time instead of holding (or shipping) the whole trace; each yield
        covers ``[lo, hi)`` with ``hi - lo <= epoch_size``.
        """
        for lo, hi in epoch_bounds(len(self._records), epoch_size):
            yield lo, hi, self._records[lo:hi]

    def thread_ids(self) -> List[int]:
        """Distinct thread ids present in the trace, sorted."""
        return sorted({r.tid for r in self._records})

    def frame_spans(self) -> List[FrameSpan]:
        """Completed frame spans (incremental pipeline epochs), in order."""
        return self.metadata.complete_frames()

    def instructions_per_thread(self) -> dict:
        """Map tid -> number of records executed by that thread."""
        counts: dict = {}
        for record in self._records:
            counts[record.tid] = counts.get(record.tid, 0) + 1
        return counts


def epoch_bounds(n_records: int, epoch_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_records)`` into ``[lo, hi)`` epochs of ``epoch_size``.

    The final epoch absorbs the remainder, so it may be shorter (never
    longer) than ``epoch_size``.  An empty trace yields no epochs.
    """
    if epoch_size <= 0:
        raise ValueError(f"epoch_size must be positive, got {epoch_size}")
    return [
        (lo, min(lo + epoch_size, n_records))
        for lo in range(0, n_records, epoch_size)
    ]


def _pack_addr_list(addrs) -> bytes:
    return struct.pack("<H", len(addrs)) + struct.pack(f"<{len(addrs)}Q", *addrs)


def _encode_metadata(meta: TraceMetadata) -> bytes:
    """Canonical v2 byte image of the metadata tail (maps sorted).

    Shared by :func:`serialize_trace` and the columnar format's ``META``
    section, so both formats agree byte-for-byte on metadata encoding.
    ``notes`` are deliberately not serialized (collection-time scratch).
    """
    chunks: List[bytes] = []
    chunks.append(struct.pack("<H", len(meta.thread_names)))
    for tid, name in sorted(meta.thread_names.items()):
        raw = name.encode("utf-8")
        chunks.append(struct.pack("<IH", tid, len(raw)) + raw)
    chunks.append(struct.pack("<I", len(meta.tile_buffers)))
    for index, cells in meta.tile_buffers:
        chunks.append(struct.pack("<Q", index) + _pack_addr_list(cells))
    load_idx = -1 if meta.load_complete_index is None else meta.load_complete_index
    chunks.append(struct.pack("<q", load_idx))

    chunks.append(struct.pack("<I", len(meta.frames)))
    for span in meta.frames:
        end = -1 if span.end is None else span.end
        raw = span.kind.encode("utf-8")
        chunks.append(
            struct.pack("<IqqH", span.frame_id, span.begin, end, len(raw)) + raw
        )
    return b"".join(chunks)


def serialize_trace(store: TraceSource) -> bytes:
    """Canonical UCWA2 byte image of a trace (records + symbols + metadata).

    The encoding is deterministic for a given trace: symbol names are
    emitted in intern order, marker ids are assigned in first-use order,
    and metadata maps are sorted.  :func:`save_trace` writes exactly these
    bytes, and :func:`trace_digest` hashes them, so two stores holding the
    same trace always share one digest — including a
    :class:`~repro.trace.columnar.ColumnarTrace` holding the same records
    (the digest is format-invariant by construction).
    """
    markers: List[str] = []
    marker_ids: dict = {}
    chunks: List[bytes] = [_HEADER]

    names = [name for _, name in store.symbols]
    chunks.append(struct.pack("<I", len(names)))
    for name in names:
        raw = name.encode("utf-8")
        chunks.append(struct.pack("<H", len(raw)) + raw)

    chunks.append(struct.pack("<Q", len(store)))
    for rec in store.forward():
        syscall = -1 if rec.syscall is None else rec.syscall
        if rec.marker is None:
            marker_id = -1
        else:
            marker_id = marker_ids.get(rec.marker)
            if marker_id is None:
                marker_id = len(markers)
                markers.append(rec.marker)
                marker_ids[rec.marker] = marker_id
        chunks.append(_REC.pack(rec.tid, rec.pc, int(rec.kind), rec.fn, syscall, marker_id))
        chunks.append(struct.pack("<B", len(rec.regs_read)) + bytes(rec.regs_read))
        chunks.append(struct.pack("<B", len(rec.regs_written)) + bytes(rec.regs_written))
        chunks.append(_pack_addr_list(rec.mem_read))
        chunks.append(_pack_addr_list(rec.mem_written))

    chunks.append(struct.pack("<H", len(markers)))
    for marker in markers:
        raw = marker.encode("utf-8")
        chunks.append(struct.pack("<H", len(raw)) + raw)

    chunks.append(_encode_metadata(store.metadata))
    return b"".join(chunks)


def save_trace(store: TraceSource, path: Union[str, Path]) -> None:
    """Serialize a trace (records + symbols + metadata) in UCWA2 form."""
    Path(path).write_bytes(serialize_trace(store))


def trace_digest(store: TraceSource) -> str:
    """Stable content digest of a trace (hex sha256 of its byte image).

    Used as the content-addressing component of profiling-service cache
    keys: two submits over byte-identical traces share a digest, and any
    change to records, symbols, or metadata produces a new one.  The hash
    is always taken over the canonical UCWA2 image, so a trace and its
    columnar (UCWA3) conversion share one digest and service cache keys
    never churn across formats.
    """
    return hashlib.sha256(serialize_trace(store)).hexdigest()


def file_digest(path: Union[str, Path]) -> str:
    """Hex sha256 of a trace file's raw bytes.

    For an on-disk job this is the cache-key digest: cheaper than parsing
    the trace, and any edit to the file (even a metadata-only one)
    invalidates dependent cache entries.  Note a v1 file and its v2/v3
    re-save hash differently — the digest addresses *bytes*, not the
    decoded record set (use :func:`trace_digest` for format-invariant
    identity).
    """
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(block)
    return hasher.hexdigest()


class _Cursor:
    """Tiny sequential unpacker over a bytes object.

    Every read is bounds-checked: running off the end of the buffer raises
    ``ValueError`` carrying ``label`` (the file path), never a bare
    ``struct.error`` or a silently-truncated byte string.
    """

    def __init__(self, data: bytes, label: str = "<trace>") -> None:
        self.data = data
        self.pos = 0
        self.label = label

    def _need(self, n: int) -> None:
        if self.pos + n > len(self.data):
            raise ValueError(
                f"{self.label}: truncated trace file "
                f"(need {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos})"
            )

    def take(self, fmt: str):
        st = struct.Struct(fmt)
        self._need(st.size)
        values = st.unpack_from(self.data, self.pos)
        self.pos += st.size
        return values

    def take_bytes(self, n: int) -> bytes:
        self._need(n)
        raw = self.data[self.pos : self.pos + n]
        self.pos += n
        return raw

    def skip(self, n: int) -> None:
        self._need(n)
        self.pos += n


#: Raw record fields, in :class:`TraceRecord` constructor order plus the
#: still-unresolved marker id: (tid, pc, kind, fn, regs_read, regs_written,
#: mem_read, mem_written, syscall-or-None, marker_id-or--1).
RawRecord = Tuple[
    int, int, int, int,
    Tuple[int, ...], Tuple[int, ...], Tuple[int, ...], Tuple[int, ...],
    Optional[int], int,
]


def _read_record(cur: _Cursor) -> RawRecord:
    """Decode one record at the cursor (the single record-layout decoder)."""
    tid, pc, kind, fn, syscall, marker_id = cur.take("<IQBIhh")
    (n_rr,) = cur.take("<B")
    regs_read = tuple(cur.take_bytes(n_rr))
    (n_rw,) = cur.take("<B")
    regs_written = tuple(cur.take_bytes(n_rw))
    (n_mr,) = cur.take("<H")
    mem_read = cur.take(f"<{n_mr}Q") if n_mr else ()
    (n_mw,) = cur.take("<H")
    mem_written = cur.take(f"<{n_mw}Q") if n_mw else ()
    return (
        tid, pc, kind, fn, regs_read, regs_written, mem_read, mem_written,
        None if syscall < 0 else syscall, marker_id,
    )


def _skip_record(cur: _Cursor) -> None:
    """Advance the cursor past one record using only its length fields.

    Walks the same fields in the same order as :func:`_read_record`, so the
    two can never disagree about a record's extent — the regression tests
    assert both land on identical section boundaries.
    """
    cur.skip(_REC.size)
    (n_rr,) = cur.take("<B")
    cur.skip(n_rr)
    (n_rw,) = cur.take("<B")
    cur.skip(n_rw)
    (n_mr,) = cur.take("<H")
    cur.skip(8 * n_mr)
    (n_mw,) = cur.take("<H")
    cur.skip(8 * n_mw)


def _materialize(raw: RawRecord, markers: List[str]) -> TraceRecord:
    (tid, pc, kind, fn, regs_read, regs_written, mem_read, mem_written,
     syscall, marker_id) = raw
    return TraceRecord(
        tid=tid,
        pc=pc,
        kind=InstrKind(kind),
        fn=fn,
        regs_read=regs_read,
        regs_written=regs_written,
        mem_read=mem_read,
        mem_written=mem_written,
        syscall=syscall,
        marker=None if marker_id < 0 else markers[marker_id],
    )


class _RecordWalker:
    """Positioned view over a v1/v2 file image: one walker per section.

    The walker owns all knowledge of section order (symbols, records,
    markers, metadata); :func:`load_trace`, :func:`iter_trace_epochs`, and
    the columnar converter all drive the same instance methods, so a
    format change cannot desync them.
    """

    def __init__(self, data: bytes, path: str) -> None:
        if data.startswith(_HEADER):
            self.has_frames = True
        elif data.startswith(_HEADER_V1):
            self.has_frames = False
        elif data.startswith(_HEADER_V3):
            raise ValueError(
                f"{path}: UCWA3 columnar trace; use load_any_trace() or "
                f"repro.trace.columnar.load_columnar()"
            )
        else:
            raise ValueError(f"{path}: not a UCWA trace file")
        self.path = path
        self.cur = _Cursor(data[len(_HEADER):], label=str(path))
        self.n_records = 0
        self._records_pos: Optional[int] = None

    def read_symbols(self) -> SymbolTable:
        symbols = SymbolTable()
        cur = self.cur
        (n_names,) = cur.take("<I")
        for _ in range(n_names):
            (length,) = cur.take("<H")
            symbols.intern(cur.take_bytes(length).decode("utf-8"))
        (self.n_records,) = cur.take("<Q")
        self._records_pos = cur.pos
        return symbols

    def skip_records(self) -> None:
        """Length-only pass over the record section (to reach the markers)."""
        for _ in range(self.n_records):
            _skip_record(self.cur)

    def rewind_to_records(self) -> None:
        assert self._records_pos is not None, "read_symbols() first"
        self.cur.pos = self._records_pos

    def read_record(self) -> RawRecord:
        return _read_record(self.cur)

    def read_markers(self) -> List[str]:
        cur = self.cur
        (n_markers,) = cur.take("<H")
        markers: List[str] = []
        for _ in range(n_markers):
            (length,) = cur.take("<H")
            markers.append(cur.take_bytes(length).decode("utf-8"))
        return markers

    def read_metadata(self, meta: TraceMetadata) -> None:
        cur = self.cur
        (n_threads,) = cur.take("<H")
        for _ in range(n_threads):
            tid, length = cur.take("<IH")
            meta.thread_names[tid] = cur.take_bytes(length).decode("utf-8")
        (n_tiles,) = cur.take("<I")
        for _ in range(n_tiles):
            (index,) = cur.take("<Q")
            (n_cells,) = cur.take("<H")
            cells = cur.take(f"<{n_cells}Q") if n_cells else ()
            meta.tile_buffers.append((index, tuple(cells)))
        (load_idx,) = cur.take("<q")
        meta.load_complete_index = None if load_idx < 0 else load_idx
        if self.has_frames:
            (n_frames,) = cur.take("<I")
            for _ in range(n_frames):
                frame_id, begin, end, length = cur.take("<IqqH")
                kind = cur.take_bytes(length).decode("utf-8")
                meta.frames.append(
                    FrameSpan(
                        frame_id=frame_id,
                        kind=kind,
                        begin=begin,
                        end=None if end < 0 else end,
                    )
                )


def load_trace(path: Union[str, Path]) -> TraceStore:
    """Load a v1/v2 trace previously written by :func:`save_trace`.

    Malformed input — wrong header, truncated file, a length field that
    runs past the end — raises ``ValueError`` with the path in the
    message.  For format-dispatching loads (v3 included) use
    :func:`load_any_trace`.
    """
    data = Path(path).read_bytes()
    walker = _RecordWalker(data, str(path))
    symbols = walker.read_symbols()

    raw_records: List[RawRecord] = [
        walker.read_record() for _ in range(walker.n_records)
    ]
    markers = walker.read_markers()

    store = TraceStore(symbols)
    append = store.append
    for raw in raw_records:
        append(_materialize(raw, markers))
    walker.read_metadata(store.metadata)
    return store


def load_any_trace(path: Union[str, Path]):
    """Load a trace of any UCWA format, dispatching on the header.

    Returns a :class:`TraceStore` for v1/v2 files and a
    :class:`repro.trace.columnar.ColumnarTrace` for v3 files.  Both satisfy
    the trace API the profiler consumes (``forward()``, ``records()``,
    ``metadata``, ``symbols``, indexing), so callers can stay
    format-agnostic.
    """
    with open(path, "rb") as fh:
        head = fh.read(len(_HEADER_V3))
    if head == _HEADER_V3:
        from .columnar import load_columnar

        return load_columnar(path)
    return load_trace(path)


def iter_trace_epochs(
    path: Union[str, Path], epoch_size: int
) -> Iterator[Tuple[int, int, List[TraceRecord]]]:
    """Stream a saved trace epoch by epoch without building a TraceStore.

    Yields ``(lo, hi, records)`` for consecutive ``[lo, hi)`` windows of at
    most ``epoch_size`` records, parsing directly from the file image.  Only
    one epoch's records are materialized at a time, so a trace far larger
    than memory-resident ``TraceStore`` comfort can still be sharded into
    epochs for the parallel slicer.

    The marker-name table lives *after* the record section in the UCWA
    format, so a length-only skip pass (the shared
    :func:`_skip_record` walker) locates it first; the second pass
    materializes records with marker names resolved.
    """
    if epoch_size <= 0:
        raise ValueError(f"epoch_size must be positive, got {epoch_size}")
    data = Path(path).read_bytes()
    walker = _RecordWalker(data, str(path))
    walker.read_symbols()

    walker.skip_records()
    markers = walker.read_markers()

    walker.rewind_to_records()
    n_records = walker.n_records
    index = 0
    while index < n_records:
        lo = index
        hi = min(index + epoch_size, n_records)
        chunk = [
            _materialize(walker.read_record(), markers) for _ in range(hi - lo)
        ]
        yield lo, hi, chunk
        index = hi
