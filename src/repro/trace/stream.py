"""Streaming frame-epoch reader over UCWA sources.

The incremental slice engine (``repro.profiler.incremental``) consumes a
trace as a sequence of **regions** — the frame spans recorded by the
engine plus the prologue/gap stretches between them — rather than as one
monolithic record list.  This module owns that partition:

* :func:`compute_regions` derives the canonical region tiling of a trace
  from its complete :class:`~repro.trace.records.FrameSpan` metadata.
  The tiling is stable under stream growth: appending a new frame only
  appends new regions, so per-region checkpoints stay valid.
* :class:`EpochStream` yields one :class:`FrameEpoch` per region, in
  trace order, materializing only that region's records.  Sources:

  - an in-memory ``TraceStore`` or mmap-backed ``ColumnarTrace`` (zero
    copies beyond the requested span);
  - a UCWA1/UCWA2 file, decoded region by region from the file image
    (only the encoded bytes stay resident, never the full record list —
    records decode to 10-50x their encoded size);
  - a UCWA3 file, which loads as a columnar trace (mmap-backed columns,
    bounded memory by construction).

  ``span(lo, hi)`` re-materializes any region on demand, which is what
  lets the incremental engine re-run a checkpointed region after a cache
  miss without holding the whole trace.
* :func:`region_digest` fingerprints a region's records independently of
  the container format; checkpoint files carry it so ``python -m
  repro.trace lint`` can verify a checkpoint still matches the trace it
  claims to summarize (the ``checkpoint-consistency`` check).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

from .records import FrameSpan, TraceMetadata, TraceRecord
from .store import (
    TraceStore,
    _HEADER_V3,
    _Cursor,
    _materialize,
    _read_record,
    _RecordWalker,
    _skip_record,
)

#: ``frame_id`` used by regions that are not frame spans.
NO_FRAME = -1

#: v2 file streams remember a record byte-offset every this many records,
#: so ``span()`` seeks near its target instead of re-skipping the prefix.
OFFSET_STRIDE = 1024


@dataclass(frozen=True)
class Region:
    """One contiguous stretch ``[lo, hi)`` of the region tiling.

    ``kind`` is the frame kind (``"load"``, ``"update"``, ...) for frame
    regions, ``"prologue"`` for records before the first frame,
    ``"gap"`` for records between/after frames, and ``"all"`` for a
    trace with no frame markers (the whole trace as one region).
    """

    index: int
    lo: int
    hi: int
    kind: str
    frame_id: int = NO_FRAME

    @property
    def is_frame(self) -> bool:
        return self.frame_id != NO_FRAME

    def n_records(self) -> int:
        return self.hi - self.lo

    def key(self) -> Tuple[int, int, int, str]:
        """Identity tuple used by checkpoints (position + extent + role)."""
        return (self.lo, self.hi, self.frame_id, self.kind)


def compute_regions(frames: Sequence[FrameSpan], n_records: int) -> List[Region]:
    """The canonical region tiling of a trace with ``frames`` spans.

    Only complete spans partition the trace; records of an unfinished
    trailing frame land in the final gap region (they re-tile once the
    frame completes, which is exactly when a checkpoint may summarize
    them).  The result tiles ``[0, n_records)`` exactly.
    """
    regions: List[Region] = []
    cursor = 0

    def push(lo: int, hi: int, kind: str, frame_id: int = NO_FRAME) -> None:
        if hi > lo:
            regions.append(Region(len(regions), lo, hi, kind, frame_id))

    for span in frames:
        if not span.complete:
            continue
        assert span.end is not None
        if span.begin > n_records or span.end >= n_records:
            break  # span beyond the (prefix) trace: not yet streamed
        push(cursor, span.begin, "prologue" if not regions else "gap")
        push(span.begin, span.end + 1, span.kind, span.frame_id)
        cursor = span.end + 1
    if not regions:
        push(0, n_records, "all")
    else:
        push(cursor, n_records, "gap")
    return regions


def region_digest(records: Sequence[TraceRecord]) -> str:
    """Format-invariant sha256 over a region's records.

    Hashes the semantic record fields (marker *names*, not table ids), so
    the digest agrees across UCWA2/UCWA3 containers and in-memory stores.
    """
    h = hashlib.sha256()
    head = struct.Struct("<IQBIq")
    u16 = struct.Struct("<H")
    for rec in records:
        h.update(
            head.pack(
                rec.tid,
                rec.pc,
                int(rec.kind),
                rec.fn,
                -1 if rec.syscall is None else rec.syscall,
            )
        )
        marker = (rec.marker or "").encode("utf-8")
        h.update(u16.pack(len(marker)))
        h.update(marker)
        for regs in (rec.regs_read, rec.regs_written):
            h.update(u16.pack(len(regs)))
            h.update(bytes(regs))
        for cells in (rec.mem_read, rec.mem_written):
            h.update(u16.pack(len(cells)))
            if cells:
                h.update(struct.pack(f"<{len(cells)}Q", *cells))
    return h.hexdigest()


@dataclass
class FrameEpoch:
    """One region of the stream, materialized.

    ``tiles`` carries the tile-buffer markers rastered inside the region
    (``(record index, pixel cells)`` pairs) — everything a consumer needs
    to form the region's frame-pixel slicing criteria without reading the
    whole trace's metadata side channel.
    """

    region: Region
    records: List[TraceRecord]
    tiles: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()

    @property
    def lo(self) -> int:
        return self.region.lo

    @property
    def hi(self) -> int:
        return self.region.hi


class EpochStream:
    """Base streaming reader: regions, epochs, and random region access."""

    def __init__(
        self, symbols, metadata: TraceMetadata, n_records: int
    ) -> None:
        self.symbols = symbols
        self.metadata = metadata
        self.n_records = n_records
        self.regions: List[Region] = compute_regions(
            metadata.complete_frames(), n_records
        )

    def __len__(self) -> int:
        return self.n_records

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        """Materialize records ``[lo, hi)`` (re-readable at any time)."""
        raise NotImplementedError

    def tiles_in(self, lo: int, hi: int) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        """Tile-buffer markers whose record index falls in ``[lo, hi)``."""
        return tuple(
            (index, cells)
            for index, cells in self.metadata.tile_buffers
            if lo <= index < hi
        )

    def epoch(self, region: Region) -> FrameEpoch:
        return FrameEpoch(
            region=region,
            records=self.span(region.lo, region.hi),
            tiles=self.tiles_in(region.lo, region.hi),
        )

    def epochs(self) -> Iterator[FrameEpoch]:
        """Yield every region in trace order, one materialized at a time."""
        for region in self.regions:
            yield self.epoch(region)


class _StoreStream(EpochStream):
    """Stream over an already-loaded trace (row store or columnar)."""

    def __init__(self, store) -> None:
        super().__init__(store.symbols, store.metadata, len(store))
        self._store = store

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        return self._store.span(lo, hi)


class _FileStreamV2(EpochStream):
    """Stream over a UCWA1/UCWA2 file image.

    Decodes records region by region; only the encoded file bytes stay
    resident.  A stride of record byte-offsets (one per
    :data:`OFFSET_STRIDE` records, collected during the initial
    length-only skip pass) makes ``span()`` seek-and-decode rather than
    re-walk the prefix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        data = Path(path).read_bytes()
        walker = _RecordWalker(data, str(path))
        symbols = walker.read_symbols()
        offsets: List[int] = []
        cur = walker.cur
        for i in range(walker.n_records):
            if i % OFFSET_STRIDE == 0:
                offsets.append(cur.pos)
            _skip_record(cur)
        self._markers = walker.read_markers()
        metadata = TraceMetadata()
        walker.read_metadata(metadata)
        super().__init__(symbols, metadata, walker.n_records)
        self._data = cur.data  # header-stripped image the offsets index
        self._label = str(path)
        self._offsets = offsets

    def span(self, lo: int, hi: int) -> List[TraceRecord]:
        if not 0 <= lo <= hi <= self.n_records:
            raise ValueError(
                f"{self._label}: span [{lo}, {hi}) outside trace of "
                f"{self.n_records}"
            )
        cur = _Cursor(self._data, label=self._label)
        cur.pos = self._offsets[lo // OFFSET_STRIDE]
        for _ in range(lo % OFFSET_STRIDE):
            _skip_record(cur)
        markers = self._markers
        return [
            _materialize(_read_record(cur), markers) for _ in range(hi - lo)
        ]


def open_epoch_stream(
    source: Union[str, Path, TraceStore, object],
) -> EpochStream:
    """Open a streaming frame-epoch reader over any UCWA source.

    ``source`` may be a path to a UCWA1/UCWA2/UCWA3 file, or an
    already-loaded ``TraceStore`` / ``ColumnarTrace``.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            head = fh.read(len(_HEADER_V3))
        if head == _HEADER_V3:
            from .columnar import load_columnar

            return _StoreStream(load_columnar(source))
        return _FileStreamV2(source)
    if hasattr(source, "span") and hasattr(source, "metadata"):
        return _StoreStream(source)
    raise TypeError(
        f"cannot stream epochs from {type(source).__name__}; expected a "
        f"path, TraceStore, or ColumnarTrace"
    )
