"""Instruction trace model: records, symbol table, storage.

This package is the contract between the trace *producers* (the simulated
browser engine in :mod:`repro.browser`, driven through the synthetic machine
in :mod:`repro.machine`) and the trace *consumer* (the backward-slicing
profiler in :mod:`repro.profiler`).
"""

from .records import InstrKind, TraceRecord, TraceMetadata
from .store import TraceStore, save_trace, load_trace, load_any_trace
from .symbols import SymbolTable

__all__ = [
    "InstrKind",
    "TraceRecord",
    "TraceMetadata",
    "TraceStore",
    "SymbolTable",
    "save_trace",
    "load_trace",
    "load_any_trace",
]
