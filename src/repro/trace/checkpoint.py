"""Serialized per-frame dataflow checkpoints (the ``.ckpt`` sidecar).

The incremental slice engine (``repro.profiler.incremental``) memoizes,
per region of the :mod:`~repro.trace.stream` tiling, the backward pass's
transfer function: the entry/exit dataflow frontiers, the region's flag
bytes, and the static write/branch footprint that justifies reusing the
run.  :class:`CheckpointImage` is the *container-level* view of that
state — frontiers as opaque byte strings, footprints as plain integer
tuples — so the trace layer can serialize, load, and lint checkpoints
without importing the profiler.

The profiler's live ``SliceCheckpoint`` converts to/from this image; the
``checkpoint-consistency`` lint check (``python -m repro.trace lint
TRACE --checkpoint=PATH``) validates an image against the trace it
claims to summarize: the region tiling must match the trace's frame
spans, and every summarized region's record count and
:func:`~repro.trace.stream.region_digest` must match the records it
covers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

CHECKPOINT_MAGIC = b"UCWACKPT1\n"

#: conventional sidecar suffix: ``trace.ucwa`` -> ``trace.ucwa.ckpt``
CHECKPOINT_SUFFIX = ".ckpt"

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")

#: per-tid value groups: (tid, values) pairs
TidGroups = Tuple[Tuple[int, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class RegionFactsImage:
    """Frontier-independent facts about one region's records."""

    n_records: int
    digest: str
    has_syscall: bool
    #: pcs executed in the region (checkpoint invalidation: a
    #: control-dependence change at any of them voids the region's memo)
    pcs: Tuple[int, ...]
    #: write/branch footprint (the delta pass-through precondition)
    mem_written: Tuple[int, ...]
    regs_written: TidGroups
    branch_pcs: TidGroups
    tids: Tuple[int, ...]


@dataclass(frozen=True)
class RegionMemoImage:
    """One memoized seedless run of a region's backward transfer."""

    #: serialized entry frontier (state in force at ``hi``)
    entry: bytes
    #: serialized exit frontier (unresolved dependences crossing ``lo``)
    exit: bytes
    #: per-record slice flags for ``[lo, hi)``
    flags: bytes
    #: retroactive RET flags landing at indices ``>= hi``
    extra: Tuple[Tuple[int, int], ...]
    #: per-tid minimum stack depth reached during the run
    min_depth: Tuple[Tuple[int, int], ...]


@dataclass
class CheckpointImage:
    """Container-level checkpoint: region tiling + facts + memos."""

    trace_digest: str = ""
    options_key: str = ""
    #: region identity tuples ``(lo, hi, frame_id, kind)`` in trace order
    regions: List[Tuple[int, int, int, str]] = field(default_factory=list)
    facts: Dict[int, RegionFactsImage] = field(default_factory=dict)
    memos: Dict[int, RegionMemoImage] = field(default_factory=dict)

    # -- serialization -------------------------------------------------- #

    def to_bytes(self) -> bytes:
        chunks: List[bytes] = [CHECKPOINT_MAGIC]
        _put_str(chunks, self.trace_digest)
        _put_str(chunks, self.options_key)
        chunks.append(_U32.pack(len(self.regions)))
        for lo, hi, frame_id, kind in self.regions:
            chunks.append(_U64.pack(lo))
            chunks.append(_U64.pack(hi))
            chunks.append(_I64.pack(frame_id))
            _put_str(chunks, kind)
        chunks.append(_U32.pack(len(self.facts)))
        for index in sorted(self.facts):
            facts = self.facts[index]
            chunks.append(_U32.pack(index))
            chunks.append(_U64.pack(facts.n_records))
            _put_str(chunks, facts.digest)
            chunks.append(_U8.pack(int(facts.has_syscall)))
            _put_u64s(chunks, facts.pcs)
            _put_u64s(chunks, facts.mem_written)
            _put_groups(chunks, facts.regs_written)
            _put_groups(chunks, facts.branch_pcs)
            _put_u64s(chunks, facts.tids)
        chunks.append(_U32.pack(len(self.memos)))
        for index in sorted(self.memos):
            memo = self.memos[index]
            chunks.append(_U32.pack(index))
            _put_blob(chunks, memo.entry)
            _put_blob(chunks, memo.exit)
            _put_blob(chunks, memo.flags)
            chunks.append(_U32.pack(len(memo.extra)))
            for ret_index, fn in memo.extra:
                chunks.append(_U64.pack(ret_index))
                chunks.append(_U64.pack(fn))
            _put_groups_scalar(chunks, memo.min_depth)
        return b"".join(chunks)

    @staticmethod
    def from_bytes(data: bytes, label: str = "<checkpoint>") -> "CheckpointImage":
        if not data.startswith(CHECKPOINT_MAGIC):
            raise ValueError(f"{label}: not a UCWA checkpoint file")
        cur = _Reader(data, len(CHECKPOINT_MAGIC), label)
        image = CheckpointImage(
            trace_digest=cur.take_str(), options_key=cur.take_str()
        )
        for _ in range(cur.take(_U32)):
            lo = cur.take(_U64)
            hi = cur.take(_U64)
            frame_id = cur.take(_I64)
            kind = cur.take_str()
            image.regions.append((lo, hi, frame_id, kind))
        for _ in range(cur.take(_U32)):
            index = cur.take(_U32)
            image.facts[index] = RegionFactsImage(
                n_records=cur.take(_U64),
                digest=cur.take_str(),
                has_syscall=bool(cur.take(_U8)),
                pcs=cur.take_u64s(),
                mem_written=cur.take_u64s(),
                regs_written=cur.take_groups(),
                branch_pcs=cur.take_groups(),
                tids=cur.take_u64s(),
            )
        for _ in range(cur.take(_U32)):
            index = cur.take(_U32)
            entry = cur.take_blob()
            exit_ = cur.take_blob()
            flags = cur.take_blob()
            extra = tuple(
                (cur.take(_U64), cur.take(_U64)) for _ in range(cur.take(_U32))
            )
            image.memos[index] = RegionMemoImage(
                entry=entry,
                exit=exit_,
                flags=flags,
                extra=extra,
                min_depth=cur.take_groups_scalar(),
            )
        return image

    def save(self, path: Union[str, Path]) -> None:
        """Write atomically (tmp + replace): concurrent readers never see
        a torn checkpoint, concurrent writers race benignly (last wins)."""
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_bytes(self.to_bytes())
        tmp.replace(target)

    @staticmethod
    def load(path: Union[str, Path]) -> "CheckpointImage":
        return CheckpointImage.from_bytes(Path(path).read_bytes(), str(path))


def sidecar_path(trace_path: Union[str, Path]) -> Path:
    """The conventional checkpoint path next to a trace file."""
    path = Path(trace_path)
    return path.with_name(path.name + CHECKPOINT_SUFFIX)


# --------------------------------------------------------------------- #
# pack/unpack helpers                                                   #
# --------------------------------------------------------------------- #


def _put_str(chunks: List[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    chunks.append(_U32.pack(len(raw)))
    chunks.append(raw)


def _put_blob(chunks: List[bytes], blob: bytes) -> None:
    chunks.append(_U32.pack(len(blob)))
    chunks.append(bytes(blob))


def _put_u64s(chunks: List[bytes], values: Tuple[int, ...]) -> None:
    chunks.append(_U32.pack(len(values)))
    if values:
        chunks.append(struct.pack(f"<{len(values)}Q", *values))


def _put_groups(chunks: List[bytes], groups: TidGroups) -> None:
    chunks.append(_U32.pack(len(groups)))
    for tid, values in groups:
        chunks.append(_U64.pack(tid))
        _put_u64s(chunks, values)


def _put_groups_scalar(
    chunks: List[bytes], pairs: Tuple[Tuple[int, int], ...]
) -> None:
    chunks.append(_U32.pack(len(pairs)))
    for tid, value in pairs:
        chunks.append(_U64.pack(tid))
        chunks.append(_I64.pack(value))


class _Reader:
    """Bounds-checked sequential reader (mirrors ``store._Cursor``)."""

    def __init__(self, data: bytes, pos: int, label: str) -> None:
        self.data = data
        self.pos = pos
        self.label = label

    def _need(self, n: int) -> None:
        if self.pos + n > len(self.data):
            raise ValueError(
                f"{self.label}: truncated checkpoint (need {n} bytes at "
                f"offset {self.pos}, have {len(self.data) - self.pos})"
            )

    def take(self, st: struct.Struct) -> int:
        self._need(st.size)
        (value,) = st.unpack_from(self.data, self.pos)
        self.pos += st.size
        return value

    def take_blob(self) -> bytes:
        n = self.take(_U32)
        self._need(n)
        raw = self.data[self.pos : self.pos + n]
        self.pos += n
        return raw

    def take_str(self) -> str:
        return self.take_blob().decode("utf-8")

    def take_u64s(self) -> Tuple[int, ...]:
        n = self.take(_U32)
        self._need(8 * n)
        values = struct.unpack_from(f"<{n}Q", self.data, self.pos)
        self.pos += 8 * n
        return values

    def take_groups(self) -> TidGroups:
        return tuple(
            (self.take(_U64), self.take_u64s()) for _ in range(self.take(_U32))
        )

    def take_groups_scalar(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(
            (self.take(_U64), self.take(_I64)) for _ in range(self.take(_U32))
        )
