"""Content-addressed result cache (in-memory LRU over an on-disk store).

Cache keys follow the recipe in ``docs/profiling-service.md``::

    key = sha256({trace_digest, criteria, frame, engine, code_version})

* ``trace_digest`` content-addresses the *input*: sha256 of the trace
  file's bytes for path jobs, :func:`repro.trace.store.trace_digest` of
  the collected trace for workload jobs.  Editing a trace file therefore
  invalidates its entries automatically — there is no explicit
  invalidation API.
* ``criteria``/``frame``/``engine`` address the *question* asked of it.
* ``code_version`` addresses the *analyzer*: a digest over the profiler
  and trace package sources, so upgrading the slicer silently retires
  every stale entry instead of serving results the current code would
  not produce.

Reads check a bounded in-memory LRU first, then the on-disk JSON store
(``<dir>/results/<key>.json``); disk hits are promoted into the LRU.
Writes go straight through to disk, so a daemon restart keeps its warm
set.  The workload→digest memo (:class:`WorkloadDigestMemo`) lets the
server answer a repeat *workload* submit without even re-running the
workload: the first run records the digest its deterministic trace
hashed to, also keyed by ``code_version``.

The disk tier has a lifecycle (docs/profiling-service.md, "Eviction and
TTL"): byte counts are tracked on every put/evict (``cache_bytes`` in
:meth:`ResultCache.stats`), an optional ``max_bytes`` budget evicts
least-recently-used entries on overflow, and an optional ``ttl_s``
expires entries by age since they were stored (an expired entry counts
as a miss and is unlinked on discovery).  On restart the store is
re-indexed from file sizes and mtimes, so budgets keep holding across
daemon generations.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union


def code_version() -> str:
    """Digest of the analyzer's source (profiler + trace + this package).

    Computed once per process over the sorted ``.py`` files of the
    packages whose behaviour determines a job's result.  Any edit to the
    slicer, the trace codecs, or the service's own job execution yields a
    new version and thereby a disjoint cache-key space.
    """
    global _CODE_VERSION
    version = _CODE_VERSION
    if version is None:
        import repro.profiler
        import repro.trace

        hasher = hashlib.sha256()
        roots = [
            Path(repro.profiler.__file__).parent,
            Path(repro.trace.__file__).parent,
            Path(__file__).parent,
        ]
        for root in roots:
            for source in sorted(root.glob("*.py")):
                hasher.update(source.name.encode("utf-8"))
                hasher.update(source.read_bytes())
        version = hasher.hexdigest()[:16]
        _CODE_VERSION = version
    return version


_CODE_VERSION: Optional[str] = None


def cache_key(
    trace_digest: str,
    criteria: str,
    engine: str,
    frame: Optional[int] = None,
    version: Optional[str] = None,
) -> str:
    """The content-addressed result key (hex sha256)."""
    payload = {
        "trace_digest": trace_digest,
        "criteria": criteria,
        "engine": engine,
        "frame": frame,
        "code_version": version if version is not None else code_version(),
    }
    raw = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()


class _DiskEntry:
    """Index record for one on-disk result (size + LRU/TTL clocks)."""

    __slots__ = ("size", "stored", "used")

    def __init__(self, size: int, stored: float, used: float) -> None:
        self.size = size
        self.stored = stored  # clock() at write time (TTL anchor)
        self.used = used  # clock() at last touch (LRU order)


class ResultCache:
    """Two-tier result cache: bounded LRU in front of a directory store.

    Thread-safe; every method may be called from connection handler and
    supervisor threads concurrently.  Hit/miss counters live here so the
    ``stats`` endpoint reports the cache's own truth rather than the
    server's bookkeeping.

    ``max_bytes`` bounds the disk tier (least-recently-used entries are
    evicted on overflow; the entry just written always survives its own
    put), ``ttl_s`` expires entries by age since storage.  ``clock`` is
    injectable for deterministic lifecycle tests and defaults to
    :func:`time.monotonic`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        memory_entries: int = 128,
        max_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if memory_entries < 1:
            raise ValueError(f"memory_entries must be >= 1, got {memory_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self._dir = Path(directory) / "results"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._memory_entries = memory_entries
        self._max_bytes = max_bytes
        self._ttl_s = ttl_s
        self._clock = clock
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        # Re-index whatever a previous daemon generation left on disk.
        # File age (wall-clock mtime) is translated onto the injected
        # clock's timeline so TTLs keep counting across restarts.
        self._index: Dict[str, _DiskEntry] = {}
        self._bytes = 0
        now = self._clock()
        wall = time.time()
        for path in sorted(self._dir.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover — raced removal
                continue
            age = max(0.0, wall - stat.st_mtime)
            entry = _DiskEntry(stat.st_size, now - age, now - age)
            self._index[path.stem] = entry
            self._bytes += entry.size
        self._enforce_budget()

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self._memory_entries:
            self._lru.popitem(last=False)

    def _drop_disk(self, key: str) -> None:
        """Remove one entry from both tiers and the byte ledger."""
        entry = self._index.pop(key, None)
        if entry is not None:
            self._bytes -= entry.size
        self._lru.pop(key, None)
        self._path(key).unlink(missing_ok=True)

    def _expired(self, key: str) -> bool:
        """TTL check; expires (and unlinks) the entry when stale."""
        if self._ttl_s is None:
            return False
        entry = self._index.get(key)
        if entry is None or self._clock() - entry.stored <= self._ttl_s:
            return False
        self._drop_disk(key)
        self.expirations += 1
        return True

    def _enforce_budget(self) -> None:
        """Evict least-recently-used entries until under ``max_bytes``."""
        if self._max_bytes is None:
            return
        while self._bytes > self._max_bytes and len(self._index) > 1:
            victim = min(self._index, key=lambda k: self._index[k].used)
            self._drop_disk(victim)
            self.evictions += 1

    def lookup(self, key: str) -> Optional[Tuple[Dict[str, Any], str]]:
        """Look up a result: ``(payload, tier)`` with tier ``"memory"`` or
        ``"disk"``, or None on miss.  Updates the hit counters."""
        with self._lock:
            if self._expired(key):
                self.misses += 1
                return None
            payload = self._lru.get(key)
            if payload is not None:
                self._lru.move_to_end(key)
                entry = self._index.get(key)
                if entry is not None:
                    entry.used = self._clock()
                self.memory_hits += 1
                return payload, "memory"
            path = self._path(key)
            try:
                payload = json.loads(path.read_text("utf-8"))
            except FileNotFoundError:
                self.misses += 1
                return None
            except (OSError, json.JSONDecodeError):
                # A torn or corrupt entry is a miss; drop it so the slot
                # heals on the next put.
                self._drop_disk(key)
                self.misses += 1
                return None
            self.disk_hits += 1
            entry = self._index.get(key)
            if entry is not None:
                entry.used = self._clock()
            self._remember(key, payload)
            return payload, "disk"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`lookup` but returns the payload alone."""
        found = self.lookup(key)
        return None if found is None else found[0]

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Read a payload without counting hits/misses or touching LRU
        order (warm-handoff enumeration must not distort the stats)."""
        with self._lock:
            payload = self._lru.get(key)
            if payload is not None:
                return payload
            try:
                return json.loads(self._path(key).read_text("utf-8"))
            except (OSError, json.JSONDecodeError):
                return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a result in both tiers (write-through)."""
        raw = json.dumps(payload, sort_keys=True)
        with self._lock:
            old = self._index.get(key)
            if old is not None:
                self._bytes -= old.size
            tmp = self._path(key).with_suffix(".tmp")
            tmp.write_text(raw, "utf-8")
            tmp.replace(self._path(key))
            now = self._clock()
            size = len(raw.encode("utf-8"))
            self._index[key] = _DiskEntry(size, now, now)
            self._bytes += size
            self._remember(key, payload)
            self._enforce_budget()

    def contains(self, key: str) -> bool:
        """Presence check without counting a hit or a miss."""
        with self._lock:
            if self._ttl_s is not None:
                entry = self._index.get(key)
                if entry is not None and self._clock() - entry.stored > self._ttl_s:
                    return False
            return key in self._lru or self._path(key).exists()

    def keys_hot_first(self) -> list:
        """Every disk key, most-recently-used first (handoff order)."""
        with self._lock:
            return sorted(
                self._index, key=lambda k: self._index[k].used, reverse=True
            )

    def cache_bytes(self) -> int:
        """Current disk-tier footprint in bytes (ledger, not a re-scan)."""
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self.memory_hits + self.disk_hits + self.misses
            hits = self.memory_hits + self.disk_hits
            return {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "hit_rate": hits / lookups if lookups else 0.0,
                "entries_memory": len(self._lru),
                "entries_disk": len(self._index),
                "cache_bytes": self._bytes,
                "max_bytes": self._max_bytes,
                "ttl_s": self._ttl_s,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }


class WorkloadDigestMemo:
    """Persisted workload-name → trace-digest memo, keyed by code version.

    Registered workloads are deterministic, so once a workload has been
    traced under the current analyzer its digest — and therefore its
    result cache key — is known without re-running it.  The memo is the
    bridge that makes a *workload* submit as warm as a *trace-path* one.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._path = Path(directory) / "workload-digests.json"
        self._lock = threading.Lock()
        self._memo: Dict[str, Dict[str, str]] = {}
        try:
            data = json.loads(self._path.read_text("utf-8"))
            if isinstance(data, dict):
                self._memo = data
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            pass

    def get(self, workload: str) -> Optional[str]:
        with self._lock:
            return self._memo.get(code_version(), {}).get(workload)

    def put(self, workload: str, digest: str) -> None:
        with self._lock:
            self._memo.setdefault(code_version(), {})[workload] = digest
            tmp = self._path.with_suffix(".tmp")
            tmp.write_text(json.dumps(self._memo, indent=2, sort_keys=True), "utf-8")
            tmp.replace(self._path)
