"""Content-addressed result cache (in-memory LRU over an on-disk store).

Cache keys follow the recipe in ``docs/profiling-service.md``::

    key = sha256({trace_digest, criteria, frame, engine, code_version})

* ``trace_digest`` content-addresses the *input*: sha256 of the trace
  file's bytes for path jobs, :func:`repro.trace.store.trace_digest` of
  the collected trace for workload jobs.  Editing a trace file therefore
  invalidates its entries automatically — there is no explicit
  invalidation API.
* ``criteria``/``frame``/``engine`` address the *question* asked of it.
* ``code_version`` addresses the *analyzer*: a digest over the profiler
  and trace package sources, so upgrading the slicer silently retires
  every stale entry instead of serving results the current code would
  not produce.

Reads check a bounded in-memory LRU first, then the on-disk JSON store
(``<dir>/results/<key>.json``); disk hits are promoted into the LRU.
Writes go straight through to disk, so a daemon restart keeps its warm
set.  The workload→digest memo (:class:`WorkloadDigestMemo`) lets the
server answer a repeat *workload* submit without even re-running the
workload: the first run records the digest its deterministic trace
hashed to, also keyed by ``code_version``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union


def code_version() -> str:
    """Digest of the analyzer's source (profiler + trace + this package).

    Computed once per process over the sorted ``.py`` files of the
    packages whose behaviour determines a job's result.  Any edit to the
    slicer, the trace codecs, or the service's own job execution yields a
    new version and thereby a disjoint cache-key space.
    """
    global _CODE_VERSION
    version = _CODE_VERSION
    if version is None:
        import repro.profiler
        import repro.trace

        hasher = hashlib.sha256()
        roots = [
            Path(repro.profiler.__file__).parent,
            Path(repro.trace.__file__).parent,
            Path(__file__).parent,
        ]
        for root in roots:
            for source in sorted(root.glob("*.py")):
                hasher.update(source.name.encode("utf-8"))
                hasher.update(source.read_bytes())
        version = hasher.hexdigest()[:16]
        _CODE_VERSION = version
    return version


_CODE_VERSION: Optional[str] = None


def cache_key(
    trace_digest: str,
    criteria: str,
    engine: str,
    frame: Optional[int] = None,
    version: Optional[str] = None,
) -> str:
    """The content-addressed result key (hex sha256)."""
    payload = {
        "trace_digest": trace_digest,
        "criteria": criteria,
        "engine": engine,
        "frame": frame,
        "code_version": version if version is not None else code_version(),
    }
    raw = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()


class ResultCache:
    """Two-tier result cache: bounded LRU in front of a directory store.

    Thread-safe; every method may be called from connection handler and
    supervisor threads concurrently.  Hit/miss counters live here so the
    ``stats`` endpoint reports the cache's own truth rather than the
    server's bookkeeping.
    """

    def __init__(self, directory: Union[str, Path], memory_entries: int = 128) -> None:
        if memory_entries < 1:
            raise ValueError(f"memory_entries must be >= 1, got {memory_entries}")
        self._dir = Path(directory) / "results"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._memory_entries = memory_entries
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        self._lru[key] = payload
        self._lru.move_to_end(key)
        while len(self._lru) > self._memory_entries:
            self._lru.popitem(last=False)

    def lookup(self, key: str) -> Optional[Tuple[Dict[str, Any], str]]:
        """Look up a result: ``(payload, tier)`` with tier ``"memory"`` or
        ``"disk"``, or None on miss.  Updates the hit counters."""
        with self._lock:
            payload = self._lru.get(key)
            if payload is not None:
                self._lru.move_to_end(key)
                self.memory_hits += 1
                return payload, "memory"
            path = self._path(key)
            try:
                payload = json.loads(path.read_text("utf-8"))
            except FileNotFoundError:
                self.misses += 1
                return None
            except (OSError, json.JSONDecodeError):
                # A torn or corrupt entry is a miss; drop it so the slot
                # heals on the next put.
                path.unlink(missing_ok=True)
                self.misses += 1
                return None
            self.disk_hits += 1
            self._remember(key, payload)
            return payload, "disk"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`lookup` but returns the payload alone."""
        found = self.lookup(key)
        return None if found is None else found[0]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a result in both tiers (write-through)."""
        raw = json.dumps(payload, sort_keys=True)
        with self._lock:
            tmp = self._path(key).with_suffix(".tmp")
            tmp.write_text(raw, "utf-8")
            tmp.replace(self._path(key))
            self._remember(key, payload)

    def contains(self, key: str) -> bool:
        """Presence check without counting a hit or a miss."""
        with self._lock:
            return key in self._lru or self._path(key).exists()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self.memory_hits + self.disk_hits + self.misses
            hits = self.memory_hits + self.disk_hits
            return {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "hit_rate": hits / lookups if lookups else 0.0,
                "entries_memory": len(self._lru),
                "entries_disk": sum(1 for _ in self._dir.glob("*.json")),
            }


class WorkloadDigestMemo:
    """Persisted workload-name → trace-digest memo, keyed by code version.

    Registered workloads are deterministic, so once a workload has been
    traced under the current analyzer its digest — and therefore its
    result cache key — is known without re-running it.  The memo is the
    bridge that makes a *workload* submit as warm as a *trace-path* one.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._path = Path(directory) / "workload-digests.json"
        self._lock = threading.Lock()
        self._memo: Dict[str, Dict[str, str]] = {}
        try:
            data = json.loads(self._path.read_text("utf-8"))
            if isinstance(data, dict):
                self._memo = data
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            pass

    def get(self, workload: str) -> Optional[str]:
        with self._lock:
            return self._memo.get(code_version(), {}).get(workload)

    def put(self, workload: str, digest: str) -> None:
        with self._lock:
            self._memo.setdefault(code_version(), {})[workload] = digest
            tmp = self._path.with_suffix(".tmp")
            tmp.write_text(json.dumps(self._memo, indent=2, sort_keys=True), "utf-8")
            tmp.replace(self._path)
