"""Wire protocol of the profiling service.

Every message — request or response — is one JSON object framed by a
4-byte big-endian length prefix.  Length-prefixed JSON keeps the protocol
introspectable (``socat`` + a JSON pretty-printer debugs it) while making
message boundaries explicit, so a reader never has to guess where one
document ends and the next begins.

Requests carry an ``op`` field::

    {"op": "ping"}
    {"op": "auth",   "token": "..."}              # TCP connections, first
    {"op": "submit", "spec": {...}, "wait": true}
    {"op": "status", "id": "job-3"}
    {"op": "wait",   "id": "job-3", "timeout_s": 30}
    {"op": "cancel", "id": "job-3"}
    {"op": "stats"}
    {"op": "shutdown", "mode": "drain"}   # or "now"

Fleet deployments (docs/profiling-service.md, "Fleet mode") add the
streaming-upload and shard-coordination ops::

    {"op": "trace-begin"}
    {"op": "trace-chunk", "data": "<base64>"}     # no response frame
    {"op": "trace-end",  "digest": "<sha256>", "spec": {...}, "wait": true}
    {"op": "has-trace",  "digest": "<sha256>"}
    {"op": "handoff",    "entries": [...]}        # warm-replica transfer
    {"op": "drain"}                               # handoff + graceful stop
    {"op": "ring"}                                # fleet topology

``trace-chunk`` is the one deliberate exception to request/response
lockstep: chunks are not individually acknowledged (an ack per chunk
would add one round trip per 256 KiB), so an upload error is reported on
the next non-chunk frame — in practice ``trace-end``.

Responses carry ``ok``: ``{"ok": true, ...}`` on success, or
``{"ok": false, "error": {"code": ..., "message": ...}}``.  Error codes
are stable strings (``invalid-spec``, ``busy``, ``shutting-down``,
``no-such-job``, ``bad-request``, ``timeout``, ``crashed``,
``cancelled``, ``job-failed``, ``internal``, ``auth-required``,
``auth-failed``, ``bad-upload``, ``digest-mismatch``, ``no-such-trace``,
``misrouted``) so clients can branch without parsing prose.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

_LENGTH = struct.Struct(">I")

#: Upper bound on one framed message.  Large enough for any stats or
#: result payload, small enough that a corrupt length prefix fails fast
#: instead of trying to allocate gigabytes.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Stable error codes (the protocol's enum; also used in job outcomes).
ERR_INVALID_SPEC = "invalid-spec"
ERR_BUSY = "busy"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_NO_SUCH_JOB = "no-such-job"
ERR_BAD_REQUEST = "bad-request"
ERR_TIMEOUT = "timeout"
ERR_CRASHED = "crashed"
ERR_CANCELLED = "cancelled"
ERR_JOB_FAILED = "job-failed"
ERR_INTERNAL = "internal"
ERR_AUTH_REQUIRED = "auth-required"
ERR_AUTH_FAILED = "auth-failed"
ERR_BAD_UPLOAD = "bad-upload"
ERR_DIGEST_MISMATCH = "digest-mismatch"
ERR_NO_SUCH_TRACE = "no-such-trace"
ERR_MISROUTED = "misrouted"


class ProtocolError(Exception):
    """A malformed frame or JSON document on the wire."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Frame and send one JSON message."""
    raw = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(raw)} bytes exceeds frame limit")
    sock.sendall(_LENGTH.pack(len(raw)) + raw)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or None on a clean EOF at a frame edge."""
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one framed JSON message; None on clean end-of-stream."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    raw = _recv_exact(sock, length)
    if raw is None:
        raise ProtocolError("connection closed before frame body")
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"frame is not valid JSON: {err}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    return message


def ok(**fields: Any) -> Dict[str, Any]:
    """A success response."""
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def error(code: str, message: str, **fields: Any) -> Dict[str, Any]:
    """A failure response with a stable error code."""
    err: Dict[str, Any] = {"code": code, "message": message}
    err.update(fields)
    return {"ok": False, "error": err}
