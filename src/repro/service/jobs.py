"""Job specs and their execution (the service's unit of work).

A :class:`JobSpec` names *what* to analyze — a registered workload or a
stored trace file — and *how*: criteria family, slicing engine, worker
count, optional frame selection.  Specs are plain JSON-able data so they
travel over the wire, key the coalescing map, and re-execute identically
on retry.

:func:`execute_job` is the function the supervised worker processes run:
resolve the spec to a trace, digest it, slice it through the pure
:func:`repro.profiler.api.run_slice_job` entry point, and return a
JSON-able result payload.  It is deliberately side-effect-free (no server
state, no cache) so a crashed attempt can simply be run again.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, asdict
from typing import Any, Dict, Optional

from ..profiler.api import ENGINES as _ENGINES
from ..profiler.api import run_slice_job
from ..profiler.criteria import criteria_names
from ..trace.store import file_digest, load_any_trace, trace_digest

#: Fault-injection hooks, honoured inside the worker process just before
#: the slice runs.  They exist so the failure paths (crash isolation,
#: retry-once, timeouts) are deterministically testable end-to-end:
#: ``crash`` kills the process on every attempt, ``crash-once`` only on
#: the first, ``hang`` sleeps past any reasonable timeout, ``error``
#: raises a structured job error.
FAULTS = ("crash", "crash-once", "hang", "error")


class SpecError(ValueError):
    """A job spec that fails validation (maps to the invalid-spec code)."""


@dataclass(frozen=True)
class JobSpec:
    """One profiling job: analysis target × criteria × engine."""

    workload: Optional[str] = None
    trace_path: Optional[str] = None
    #: content address (hex sha256) of a trace already streamed into the
    #: server's upload registry — the fleet's submit form: the client
    #: uploads bytes once per shard, then submits by digest alone
    trace_ref: Optional[str] = None
    criteria: str = "pixels"
    engine: str = "sequential"
    workers: Optional[int] = None
    frame: Optional[int] = None
    timeout_s: Optional[float] = None
    fault: Optional[str] = None
    #: directory holding per-trace-digest incremental checkpoints; the
    #: server injects its own cache-derived path for incremental jobs, so
    #: successive frame submits of one trace pay only the per-frame delta
    checkpoint_dir: Optional[str] = None
    #: the server's upload-registry directory (server-injected, like
    #: ``checkpoint_dir``); resolves ``trace_ref`` jobs inside the worker
    upload_dir: Optional[str] = None

    def validate(self) -> "JobSpec":
        """Check the spec against the registries; raise :class:`SpecError`."""
        from ..workloads import benchmark_names, unknown_names

        targets = [t for t in (self.workload, self.trace_path, self.trace_ref) if t]
        if len(targets) != 1:
            raise SpecError(
                "exactly one of 'workload', 'trace_path', or 'trace_ref' "
                "is required"
            )
        if self.trace_ref is not None and not (
            len(self.trace_ref) == 64
            and all(c in "0123456789abcdef" for c in self.trace_ref)
        ):
            raise SpecError(
                f"trace_ref must be a hex sha256 digest, got {self.trace_ref!r}"
            )
        if self.workload is not None and unknown_names([self.workload]):
            raise SpecError(
                f"unknown workload {self.workload!r}; "
                f"available: {', '.join(benchmark_names())}"
            )
        if self.criteria not in criteria_names():
            raise SpecError(
                f"unknown criteria {self.criteria!r}; "
                f"available: {', '.join(criteria_names())}"
            )
        if self.engine not in _ENGINES:
            raise SpecError(
                f"unknown engine {self.engine!r}; expected one of {_ENGINES}"
            )
        if self.workers is not None and self.workers < 1:
            raise SpecError(f"workers must be >= 1, got {self.workers}")
        if self.frame is not None and self.frame < 0:
            raise SpecError(f"frame must be >= 0, got {self.frame}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.fault is not None and self.fault not in FAULTS:
            raise SpecError(
                f"unknown fault {self.fault!r}; available: {', '.join(FAULTS)}"
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (drops unset fields for stable fingerprints)."""
        return {k: v for k, v in asdict(self).items() if v is not None}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "JobSpec":
        """Parse a wire-form spec, rejecting unknown fields."""
        if not isinstance(data, dict):
            raise SpecError(f"job spec must be an object, got {type(data).__name__}")
        known = {f for f in JobSpec.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown job-spec field(s): {', '.join(unknown)}")
        return JobSpec(**data).validate()

    def fingerprint(self) -> str:
        """Identity of the job for submit coalescing.

        Covers every result-affecting field (and the fault hook, so a
        fault-injected job never coalesces with a clean one) but not
        ``timeout_s``, ``checkpoint_dir``, or ``upload_dir``, which only
        affect how fast the (byte-identical) result is produced.
        """
        payload = self.to_dict()
        payload.pop("timeout_s", None)
        payload.pop("checkpoint_dir", None)
        payload.pop("upload_dir", None)
        if self.trace_path is not None:
            payload["trace_path"] = os.path.abspath(self.trace_path)
        raw = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(raw).hexdigest()


def resolve_trace(spec: JobSpec):
    """Materialize the spec's trace: load the file or run the workload.

    Trace files load through :func:`repro.trace.store.load_any_trace`, so
    path jobs accept every UCWA format (columnar v3 included — the cheap
    way to feed the ``vectorized`` engine).  Workload runs use the same
    recipe as ``harness.experiments.run_benchmark`` (``metrics_ticks=2``),
    so a service job over a workload sees the byte-identical trace the
    in-process harness sees.
    """
    if spec.trace_path is not None:
        return load_any_trace(spec.trace_path)
    if spec.trace_ref is not None:
        path = resolve_trace_ref(spec)
        return load_any_trace(path)
    from ..harness.experiments import run_engine
    from ..workloads import benchmark

    assert spec.workload is not None  # validate() guarantees one target
    return run_engine(benchmark(spec.workload), metrics_ticks=2).trace_store()


def resolve_trace_ref(spec: JobSpec):
    """The upload-registry path of a ``trace_ref`` job's bytes.

    The digest was verified when the upload was streamed in, so the path
    *is* the content address — no re-hash.  A ref the registry does not
    hold is a spec error (the server checks at submit time and returns
    the stable ``no-such-trace`` code; this guard covers direct callers).
    """
    from .fleet.upload import upload_path

    if spec.upload_dir is None:
        raise SpecError(
            "trace_ref jobs need the server's upload registry (upload_dir)"
        )
    path = upload_path(spec.upload_dir, spec.trace_ref or "")
    if not path.exists():
        raise SpecError(f"no uploaded trace with digest {spec.trace_ref}")
    return path


def _inject_fault(spec: JobSpec, attempt: int) -> None:
    if spec.fault is None:
        return
    if spec.fault == "crash" or (spec.fault == "crash-once" and attempt == 0):
        os._exit(17)
    if spec.fault == "hang":
        time.sleep(3600.0)
    if spec.fault == "error":
        raise SpecError("injected job error")


def execute_job(spec: JobSpec, attempt: int = 0) -> Dict[str, Any]:
    """Run one job to completion and return its JSON-able result payload.

    The payload carries the trace digest (for content-addressed caching
    by the server), a sha256 over the slice flags (so two runs can be
    compared for byte-identity without shipping the flags), per-thread
    statistics matching :func:`repro.profiler.stats.compute_statistics`,
    the engine diagnostics, and per-stage timings.
    """
    t0 = time.perf_counter()
    store = resolve_trace(spec)
    if spec.trace_path is not None:
        digest = file_digest(spec.trace_path)
    elif spec.trace_ref is not None:
        digest = spec.trace_ref  # verified when the upload was streamed in
    else:
        digest = trace_digest(store)
    t1 = time.perf_counter()
    _inject_fault(spec, attempt)
    checkpoint = None
    checkpoint_path = None
    checkpoint_state = None
    if spec.engine == "incremental" and spec.checkpoint_dir is not None:
        from pathlib import Path

        from ..profiler.incremental import SliceCheckpoint, checkpoint_path_for

        ckpt_dir = Path(spec.checkpoint_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        checkpoint_path = checkpoint_path_for(digest, ckpt_dir)
        if checkpoint_path.exists():
            try:
                checkpoint = SliceCheckpoint.load(checkpoint_path)
                checkpoint_state = "warm"
            except ValueError:
                checkpoint = None  # torn/stale file: rebuild from scratch
        if checkpoint is None:
            checkpoint = SliceCheckpoint(trace_digest=digest)
            checkpoint_state = "cold"
    result, stats = run_slice_job(
        store,
        criteria=spec.criteria,
        engine=spec.engine,
        workers=spec.workers,
        frame=spec.frame,
        checkpoint=checkpoint,
    )
    if checkpoint is not None and checkpoint_path is not None:
        checkpoint.trace_digest = digest
        checkpoint.save(checkpoint_path)
    t2 = time.perf_counter()
    engine_stats = dict(result.engine_stats)
    if checkpoint_state is not None:
        engine_stats["checkpoint"] = checkpoint_state
    return {
        "criteria": result.criteria_name,
        "engine": spec.engine,
        "trace_digest": digest,
        "total": stats.total,
        "slice_size": stats.in_slice,
        "fraction": stats.fraction,
        "flags_sha256": hashlib.sha256(bytes(result.flags)).hexdigest(),
        "threads": [
            {
                "tid": t.tid,
                "name": t.name,
                "total": t.total,
                "in_slice": t.in_slice,
            }
            for t in stats.threads
        ],
        "engine_stats": engine_stats,
        "timings": {
            "resolve_s": t1 - t0,
            "slice_s": t2 - t1,
        },
    }
