"""Profiling-as-a-service: a long-running analysis daemon.

The batch tools (``python -m repro.trace slice``, ``python -m
repro.harness``) re-pay the full backward pass on every invocation.  This
package wraps the same engines in a service front end so analysis traffic
amortizes: a daemon (:mod:`.server`) accepts jobs over a length-prefixed
JSON protocol (:mod:`.protocol`) on a local socket, runs them on a
supervised worker pool (:mod:`.worker`) that isolates crashes and
enforces per-job timeouts, and answers repeat submits from a
content-addressed result cache (:mod:`.cache`) keyed by trace digest ×
criteria × engine × code version — a warm submit never touches the
slicer.  :mod:`.client` is the library interface, ``python -m
repro.service`` the CLI, and :mod:`.metrics` the ``stats`` endpoint's
bookkeeping.  See ``docs/profiling-service.md``.
"""

from .cache import ResultCache, cache_key, code_version
from .client import ServiceClient, ServiceError
from .jobs import JobSpec, SpecError, execute_job
from .metrics import ServiceMetrics
from .protocol import ProtocolError, recv_message, send_message
from .server import ProfilingServer

__all__ = [
    "ProfilingServer",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "JobSpec",
    "SpecError",
    "execute_job",
    "ResultCache",
    "cache_key",
    "code_version",
    "ProtocolError",
    "send_message",
    "recv_message",
]
