"""Saturation load harness for an N-shard fleet.

``python -m repro.service loadtest`` boots a localhost fleet, replays
thousands of concurrent mixed cold/warm submits through the shard-aware
:class:`~repro.service.fleet.router.FleetClient`, and asserts the
budgets the service documents (docs/profiling-service.md):

* **zero dropped jobs** — every submit ends in a terminal outcome; a
  ``busy`` rejection is backpressure, not a drop, and the harness
  retries it with backoff until the queue admits the job;
* **warm-hit rate** — after round one populated the sharded cache, at
  least :attr:`LoadtestConfig.warm_hit_target` of round two's submits
  must resolve from cache (``cache-memory`` / ``cache-disk``);
* **p99 latency** — round two's client-observed p99 must stay under
  :attr:`LoadtestConfig.p99_budget_s`.

The harness is a pure function (:func:`run_loadtest` → report object);
the CLI and the ``fleet-smoke`` CI job render and gate on the same
report, and the shard-scaling table in EXPERIMENTS.md is this harness
run at ``--shards=1/2/4``.
"""

from __future__ import annotations

import queue
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..client import ServiceError
from ..metrics import percentile
from .router import FleetClient
from .supervisor import FleetSupervisor

#: The documented warm-round p99 budget (seconds).  A warm submit is a
#: connection round trip plus a cache probe; half a second leaves two
#: orders of magnitude of headroom over the expected cost, so a breach
#: signals a real regression (lock convoy, probe miss, routing loop) —
#: not machine noise.
DEFAULT_P99_BUDGET_S = 0.5


@dataclass(frozen=True)
class LoadtestConfig:
    """One load-test scenario (defaults are the acceptance scenario)."""

    shards: int = 4
    clients: int = 64
    jobs: int = 2000  # submits per round
    rounds: int = 2  # round 1 is cold, later rounds measure warmth
    traces: int = 4  # distinct trace files in the mix
    n_frames: int = 3
    records_per_frame: int = 250
    seed: int = 7
    criteria: Tuple[str, ...] = ("pixels", "syscalls", "pixels+syscalls")
    engine: str = "sequential"
    workers: int = 2  # per shard
    queue_size: int = 16  # per shard (small on purpose: exercises busy)
    auth_token: str = "loadtest-shared-secret"
    p99_budget_s: float = DEFAULT_P99_BUDGET_S
    warm_hit_target: float = 0.9
    max_busy_retries: int = 500


@dataclass
class RoundReport:
    """What one round of submits observed, client-side."""

    round: int
    jobs: int
    completed: int = 0
    dropped: int = 0
    warm_hits: int = 0
    busy_retries: int = 0
    failovers: int = 0
    duration_s: float = 0.0
    outcomes: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def warm_hit_rate(self) -> float:
        return self.warm_hits / self.completed if self.completed else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "jobs": self.jobs,
            "completed": self.completed,
            "dropped": self.dropped,
            "warm_hits": self.warm_hits,
            "warm_hit_rate": self.warm_hit_rate,
            "busy_retries": self.busy_retries,
            "failovers": self.failovers,
            "duration_s": self.duration_s,
            "outcomes": dict(self.outcomes),
            "latency": dict(self.latency),
        }


@dataclass
class LoadtestReport:
    """The full run: per-round observations + the fleet's own metrics."""

    config: LoadtestConfig
    rounds: List[RoundReport]
    fleet_stats: Dict[str, Any]

    def check(self) -> List[str]:
        """Budget violations (empty list = the run passed)."""
        violations: List[str] = []
        for report in self.rounds:
            if report.dropped:
                violations.append(
                    f"round {report.round}: {report.dropped} dropped job(s)"
                )
            if report.completed != report.jobs:
                violations.append(
                    f"round {report.round}: {report.completed}/{report.jobs} "
                    f"jobs completed"
                )
        if len(self.rounds) >= 2:
            warm = self.rounds[-1]
            if warm.warm_hit_rate < self.config.warm_hit_target:
                violations.append(
                    f"round {warm.round}: warm hit rate "
                    f"{warm.warm_hit_rate:.1%} under the "
                    f"{self.config.warm_hit_target:.0%} target"
                )
            p99 = warm.latency.get("p99_s")
            if p99 is not None and p99 > self.config.p99_budget_s:
                violations.append(
                    f"round {warm.round}: p99 {p99 * 1000:.1f} ms over the "
                    f"{self.config.p99_budget_s * 1000:.0f} ms budget"
                )
        return violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": {
                "shards": self.config.shards,
                "clients": self.config.clients,
                "jobs": self.config.jobs,
                "rounds": self.config.rounds,
                "traces": self.config.traces,
                "p99_budget_s": self.config.p99_budget_s,
                "warm_hit_target": self.config.warm_hit_target,
            },
            "rounds": [r.to_dict() for r in self.rounds],
            "violations": self.check(),
            "fleet": self.fleet_stats.get("fleet", {}),
        }


def _build_traces(config: LoadtestConfig, directory: Path) -> List[Path]:
    """Small, frame-bearing fuzz traces: the mixed submit corpus."""
    from ...trace.store import save_trace
    from ...workloads.fuzz import random_frame_trace

    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index in range(config.traces):
        store = random_frame_trace(
            seed=config.seed + index,
            n_frames=config.n_frames,
            records_per_frame=config.records_per_frame,
        )
        path = directory / f"trace-{index}.ucwa"
        save_trace(store, path)
        paths.append(path)
    return paths


def _run_round(
    round_index: int,
    config: LoadtestConfig,
    client: FleetClient,
    traces: List[Path],
) -> RoundReport:
    report = RoundReport(round=round_index, jobs=config.jobs)
    work: "queue.Queue[int]" = queue.Queue()
    for job_index in range(config.jobs):
        work.put(job_index)
    lock = threading.Lock()
    latencies: List[float] = []

    def one_submit(job_index: int) -> None:
        path = traces[job_index % len(traces)]
        criteria = config.criteria[job_index % len(config.criteria)]
        busy = 0
        delay = 0.005
        t0 = time.perf_counter()
        response: Optional[Dict[str, Any]] = None
        while busy <= config.max_busy_retries:
            try:
                response = client.submit_trace(
                    path, criteria=criteria, engine=config.engine, wait=True
                )
                break
            except ServiceError as err:
                if err.code == "busy":
                    busy += 1
                    time.sleep(delay)
                    delay = min(delay * 1.5, 0.1)
                    continue
                raise
        elapsed = time.perf_counter() - t0
        with lock:
            report.busy_retries += busy
            if response is None:
                report.dropped += 1
                return
            report.completed += 1
            latencies.append(elapsed)
            outcome = response.get("outcome") or "unknown"
            report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
            if outcome in ("cache-memory", "cache-disk"):
                report.warm_hits += 1

    def worker() -> None:
        while True:
            try:
                job_index = work.get_nowait()
            except queue.Empty:
                return
            try:
                one_submit(job_index)
            except ServiceError:
                with lock:
                    report.dropped += 1

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"load-client-{i}", daemon=True)
        for i in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - started
    if latencies:
        report.latency = {
            "mean_s": sum(latencies) / len(latencies),
            "p50_s": percentile(latencies, 50),
            "p90_s": percentile(latencies, 90),
            "p99_s": percentile(latencies, 99),
        }
    return report


def run_loadtest(
    config: LoadtestConfig,
    base_dir: Optional[Union[str, Path]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> LoadtestReport:
    """Boot a fleet, hammer it for ``config.rounds`` rounds, report."""
    emit = log or (lambda message: None)
    owns_dir = base_dir is None
    root = Path(base_dir) if base_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-loadtest-")
    )
    try:
        traces = _build_traces(config, root / "traces")
        emit(
            f"built {len(traces)} traces; booting {config.shards}-shard fleet"
        )
        with FleetSupervisor(
            root / "fleet",
            config.shards,
            auth_token=config.auth_token,
            workers=config.workers,
            queue_size=config.queue_size,
        ) as supervisor:
            assert supervisor.config is not None
            client = FleetClient(
                supervisor.config, auth_token=config.auth_token
            )
            rounds = []
            for round_index in range(1, config.rounds + 1):
                report = _run_round(round_index, config, client, traces)
                rounds.append(report)
                emit(
                    f"round {round_index}: {report.completed}/{report.jobs} ok, "
                    f"{report.dropped} dropped, "
                    f"warm {report.warm_hit_rate:.1%}, "
                    f"busy retries {report.busy_retries}, "
                    f"{report.duration_s:.2f}s"
                )
            fleet_stats = client.stats()
        return LoadtestReport(config=config, rounds=rounds, fleet_stats=fleet_stats)
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


def render_report(report: LoadtestReport) -> str:
    """Human-readable summary (the CLI's output)."""
    lines = [
        f"fleet loadtest: {report.config.shards} shard(s), "
        f"{report.config.clients} clients, {report.config.jobs} jobs/round"
    ]
    for round_report in report.rounds:
        p99 = round_report.latency.get("p99_s")
        p99_text = f"p99 {p99 * 1000:.1f} ms" if p99 is not None else "p99 n/a"
        lines.append(
            f"  round {round_report.round}: "
            f"{round_report.completed}/{round_report.jobs} completed, "
            f"{round_report.dropped} dropped, "
            f"warm {round_report.warm_hit_rate:.1%}, "
            f"busy retries {round_report.busy_retries}, "
            f"{p99_text}, wall {round_report.duration_s:.2f}s"
        )
    violations = report.check()
    if violations:
        lines.append("BUDGET VIOLATIONS:")
        lines.extend(f"  - {violation}" for violation in violations)
    else:
        lines.append(
            f"all budgets met (p99 <= {report.config.p99_budget_s * 1000:.0f} ms, "
            f"warm >= {report.config.warm_hit_target:.0%}, zero drops)"
        )
    return "\n".join(lines)
