"""Consistent-hash ring: which shard owns which result key.

Every shard and every fleet client builds the same :class:`HashRing`
from the shared :class:`FleetConfig`, so placement is a pure function of
the key — no directory service, no coordination traffic.  Keys are the
content-addressed result-cache keys (``sha256(trace digest × criteria ×
engine × frame × code_version)``, see :func:`repro.service.cache.cache_key`),
so one trace digest's different questions spread across the fleet while
every repeat of the *same* question lands on the same shard.

Each shard contributes :data:`DEFAULT_VNODES` virtual points to the
ring (sha256 of ``"<shard-id>#<vnode>"``), which keeps the per-shard
load share near ``1/N`` and — the property that makes draining cheap —
means removing a shard remaps only the keys that shard owned, each to
the next shard clockwise from the key's point (its *ring successor*).
:meth:`HashRing.preference` exposes that clockwise walk as the failover
order clients use when a shard dies mid-job.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

#: Virtual nodes per shard.  64 keeps the max/min load ratio under ~1.4
#: for small fleets while the ring stays tiny (N*64 points).
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """Position of a label on the 64-bit ring."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over a fixed set of shard ids."""

    def __init__(self, shard_ids: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        ids = list(dict.fromkeys(shard_ids))
        if not ids:
            raise ValueError("a ring needs at least one shard")
        if len(ids) != len(list(shard_ids)):
            raise ValueError(f"duplicate shard ids in {list(shard_ids)!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._ids: Tuple[str, ...] = tuple(ids)
        self._vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for shard_id in ids:
            for vnode in range(vnodes):
                points.append((_point(f"{shard_id}#{vnode}"), shard_id))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        return self._ids

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._ids)

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise from its hash)."""
        index = bisect.bisect_right(self._hashes, _point(key)) % len(self._points)
        return self._points[index][1]

    def preference(self, key: str, n: int = 0) -> List[str]:
        """Distinct shards in clockwise order from ``key``'s point.

        The first entry is :meth:`owner`; the rest are the successive
        failover targets (each is exactly the shard that would own the
        key if every earlier entry left the ring).  ``n`` caps the list
        (0 = all shards).
        """
        want = len(self._ids) if n < 1 else min(n, len(self._ids))
        start = bisect.bisect_right(self._hashes, _point(key))
        seen: set = set()
        order: List[str] = []
        for offset in range(len(self._points)):
            shard_id = self._points[(start + offset) % len(self._points)][1]
            if shard_id not in seen:
                seen.add(shard_id)
                order.append(shard_id)
                if len(order) == want:
                    break
        return order

    def without(self, shard_id: str) -> "HashRing":
        """The ring after ``shard_id`` leaves (for drain/handoff placement)."""
        remaining = [s for s in self._ids if s != shard_id]
        if len(remaining) == len(self._ids):
            raise KeyError(f"shard {shard_id!r} is not on the ring")
        if not remaining:
            raise ValueError(f"cannot remove {shard_id!r}: it is the last shard")
        return HashRing(remaining, self._vnodes)


@dataclass(frozen=True)
class ShardInfo:
    """One shard's identity and TCP address."""

    id: str
    host: str
    port: int

    @property
    def endpoint(self) -> str:
        """Endpoint string :class:`~repro.service.client.ServiceClient` accepts."""
        return f"tcp:{self.host}:{self.port}"

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "host": self.host, "port": self.port}


@dataclass(frozen=True)
class FleetConfig:
    """The fleet topology every shard and client shares.

    Placement is derived (``config.ring()``), never stored, so two
    processes holding equal configs always agree on ownership.
    """

    shards: Tuple[ShardInfo, ...]
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        ids = [s.id for s in self.shards]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {ids}")

    def ring(self) -> HashRing:
        return HashRing([s.id for s in self.shards], self.vnodes)

    def shard(self, shard_id: str) -> ShardInfo:
        for info in self.shards:
            if info.id == shard_id:
                return info
        raise KeyError(f"no shard {shard_id!r} in fleet {[s.id for s in self.shards]}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": [s.to_dict() for s in self.shards],
            "vnodes": self.vnodes,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FleetConfig":
        if not isinstance(data, dict) or not isinstance(data.get("shards"), list):
            raise ValueError("fleet config must be {'shards': [...], 'vnodes': N}")
        shards = []
        for entry in data["shards"]:
            try:
                shards.append(
                    ShardInfo(
                        id=str(entry["id"]),
                        host=str(entry["host"]),
                        port=int(entry["port"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as err:
                raise ValueError(f"bad shard entry {entry!r}: {err}") from None
        vnodes = data.get("vnodes", DEFAULT_VNODES)
        if not isinstance(vnodes, int) or vnodes < 1:
            raise ValueError(f"vnodes must be a positive integer, got {vnodes!r}")
        return FleetConfig(shards=tuple(shards), vnodes=vnodes)
