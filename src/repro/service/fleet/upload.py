"""Chunked streaming trace upload: bounded memory on both ends.

A client submits a trace it holds on disk without either side ever
materializing the full UCWA image in memory:

* the **client** reads the file :data:`CHUNK_SIZE_DEFAULT` bytes at a
  time (:func:`iter_file_chunks`) and ships each chunk as one
  ``trace-chunk`` protocol frame, keeping a running sha256;
* the **server** appends each chunk to a spool file in its upload
  registry and keeps its own running sha256 — per-connection state is
  one open file handle plus one hash context, independent of trace
  size;
* ``trace-end`` carries the client's digest.  The server accepts the
  upload only if its running digest matches (``digest-mismatch``
  otherwise) and the spooled bytes carry a UCWA magic header
  (``bad-upload`` otherwise), then atomically renames the spool to
  ``uploads/<digest>.ucwa``.

The registered file is content-addressed by construction: its name *is*
its sha256, which is exactly the ``file_digest`` the result cache keys
on.  A later ``trace_ref`` job spec therefore needs no re-hash, and an
incremental-engine job slices the file through the bounded-memory
:class:`~repro.trace.stream.EpochStream`, so the decoded record list is
never fully resident either.
"""

from __future__ import annotations

import hashlib
import os
import uuid
from pathlib import Path
from typing import BinaryIO, Iterator, List, Optional, Union

#: Default client-side read/ship granularity.  Big enough that framing
#: overhead is noise, small enough that per-connection memory is trivial.
CHUNK_SIZE_DEFAULT = 256 * 1024

#: Hard per-chunk cap enforced server-side (decoded bytes).  A chunk
#: above this is a protocol violation, not a tuning knob.
MAX_CHUNK_BYTES = 8 * 1024 * 1024

_UCWA_MAGICS = (b"UCWA1\n", b"UCWA2\n", b"UCWA3\n")


def upload_path(directory: Union[str, Path], digest: str) -> Path:
    """Registry path of an uploaded trace (content-addressed by digest)."""
    return Path(directory) / f"{digest}.ucwa"


def iter_file_chunks(
    path: Union[str, Path], chunk_size: int = CHUNK_SIZE_DEFAULT
) -> Iterator[bytes]:
    """Yield a file's bytes in bounded chunks (never the whole file)."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                return
            yield chunk


class UploadError(Exception):
    """A rejected upload; ``code`` is a stable protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class UploadSession:
    """Server-side state of one in-flight chunked upload.

    Owned by a single connection handler; a connection that drops
    mid-upload aborts its session, which removes the partial spool file
    (truncated uploads never register).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._spool = self._dir / f".part-{uuid.uuid4().hex}"
        self._fh: Optional[BinaryIO] = open(self._spool, "wb")
        self._hasher = hashlib.sha256()
        self.received = 0
        self.chunks = 0

    def append(self, data: bytes) -> None:
        """Spool one chunk (running digest, O(chunk) memory)."""
        from .. import protocol

        if self._fh is None:
            raise UploadError(protocol.ERR_BAD_UPLOAD, "upload already finished")
        if len(data) > MAX_CHUNK_BYTES:
            raise UploadError(
                protocol.ERR_BAD_UPLOAD,
                f"chunk of {len(data)} bytes exceeds the "
                f"{MAX_CHUNK_BYTES}-byte limit",
            )
        self._fh.write(data)
        self._hasher.update(data)
        self.received += len(data)
        self.chunks += 1

    def finish(self, claimed_digest: str) -> "FinishedUpload":
        """Verify the running digest and register the spooled bytes."""
        from .. import protocol

        if self._fh is None:
            raise UploadError(protocol.ERR_BAD_UPLOAD, "upload already finished")
        self._fh.close()
        self._fh = None
        digest = self._hasher.hexdigest()
        if digest != claimed_digest:
            self._spool.unlink(missing_ok=True)
            raise UploadError(
                protocol.ERR_DIGEST_MISMATCH,
                f"upload digest {digest[:16]}… does not match the claimed "
                f"{str(claimed_digest)[:16]}… after {self.received} bytes",
            )
        with open(self._spool, "rb") as fh:
            magic = fh.read(6)
        if magic not in _UCWA_MAGICS:
            self._spool.unlink(missing_ok=True)
            raise UploadError(
                protocol.ERR_BAD_UPLOAD,
                "uploaded bytes are not a UCWA trace (bad magic)",
            )
        final = upload_path(self._dir, digest)
        os.replace(self._spool, final)
        return FinishedUpload(digest=digest, path=final, size=self.received)

    def abort(self) -> None:
        """Drop the session and its partial spool file (idempotent)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass
            self._fh = None
        self._spool.unlink(missing_ok=True)


class FinishedUpload:
    """A verified, registered upload."""

    __slots__ = ("digest", "path", "size")

    def __init__(self, digest: str, path: Path, size: int) -> None:
        self.digest = digest
        self.path = path
        self.size = size


class UploadStore:
    """The server's registry of verified uploads (``uploads/<digest>.ucwa``)."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def session(self) -> UploadSession:
        return UploadSession(self.directory)

    def has(self, digest: str) -> bool:
        return upload_path(self.directory, digest).exists()

    def path(self, digest: str) -> Path:
        return upload_path(self.directory, digest)

    def digests(self) -> List[str]:
        return sorted(p.stem for p in self.directory.glob("*.ucwa"))
