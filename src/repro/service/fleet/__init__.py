"""Fleet layer: run the profiling service as a sharded cluster.

One :class:`~repro.service.server.ProfilingServer` is a single node —
one socket, one worker pool, one cache.  This package turns N of them
into a fleet:

* :mod:`~repro.service.fleet.ring` — consistent-hash placement of
  content-addressed result keys across shards (virtual nodes, minimal
  disruption on membership change) plus the :class:`FleetConfig`
  topology record every shard and client shares.
* :mod:`~repro.service.fleet.upload` — the chunked streaming trace
  upload (``trace-begin`` / ``trace-chunk`` / ``trace-end`` frames with
  running digest verification), bounded-memory on both ends.
* :mod:`~repro.service.fleet.router` — :class:`FleetClient`, the
  shard-aware client: maps each job to its ring owner, uploads trace
  bytes where they are needed, and fails over along the ring when a
  shard dies.
* :mod:`~repro.service.fleet.supervisor` — boot an N-shard fleet of
  in-process servers on localhost TCP (tests, the load harness, and
  ``python -m repro.service loadtest``).
* :mod:`~repro.service.fleet.loadtest` — the saturation load harness:
  thousands of concurrent mixed cold/warm submits with p99, hit-rate,
  and zero-drop budget assertions.

Protocol, auth, and eviction knobs are documented in
docs/profiling-service.md ("Fleet mode").
"""

from .ring import DEFAULT_VNODES, FleetConfig, HashRing, ShardInfo
from .upload import CHUNK_SIZE_DEFAULT, iter_file_chunks, upload_path

__all__ = [
    "CHUNK_SIZE_DEFAULT",
    "DEFAULT_VNODES",
    "FleetConfig",
    "HashRing",
    "ShardInfo",
    "iter_file_chunks",
    "upload_path",
]
