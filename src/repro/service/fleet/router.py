"""Shard-aware fleet client: route each question to the shard owning it.

:class:`FleetClient` holds the shared
:class:`~repro.service.fleet.ring.FleetConfig` and derives, for every
submit, the content-addressed cache key (``sha256(trace digest ×
criteria × engine × frame × code_version)``) and that key's ring owner.
Submits go straight to the owner, so repeat questions always land where
the warm entry lives; trace bytes are streamed to a shard at most once
per (shard, digest) pair and referenced by ``trace_ref`` afterwards.

When a shard dies, the client walks
:meth:`~repro.service.fleet.ring.HashRing.preference` — each next entry
is exactly the shard that would own the key if the dead ones left the
ring, so the failover target agrees with where a post-departure drain
would have handed the entry.  Servers apply the same routing on their
side (misrouted submits are forwarded), so even a client that talks to
an arbitrary shard still hits the warm copy; this client just skips
the extra hop.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..cache import cache_key
from ..client import ServiceClient, ServiceError
from ..metrics import merge_snapshots
from ...trace.store import file_digest
from .ring import FleetConfig, HashRing


class FleetClient:
    """Submit jobs to an N-shard fleet by content-addressed ownership."""

    def __init__(
        self,
        fleet: FleetConfig,
        auth_token: Optional[str] = None,
        connect_timeout_s: float = 5.0,
    ) -> None:
        self._fleet = fleet
        self._ring: HashRing = fleet.ring()
        self._clients: Dict[str, ServiceClient] = {
            info.id: ServiceClient(
                info.endpoint,
                connect_timeout_s=connect_timeout_s,
                auth_token=auth_token,
            )
            for info in fleet.shards
        }
        self._lock = threading.Lock()
        #: (shard id, digest) pairs already streamed — one upload per
        #: shard per trace, then every submit is a trace_ref.
        self._uploaded: Set[Tuple[str, str]] = set()
        self._digests: Dict[str, str] = {}  # abspath -> digest memo

    @property
    def fleet(self) -> FleetConfig:
        return self._fleet

    @property
    def ring(self) -> HashRing:
        return self._ring

    def client(self, shard_id: str) -> ServiceClient:
        return self._clients[shard_id]

    # -- placement ------------------------------------------------------ #

    def key_for(
        self,
        digest: str,
        criteria: str = "pixels",
        engine: str = "sequential",
        frame: Optional[int] = None,
    ) -> str:
        return cache_key(digest, criteria, engine, frame)

    def owner_for(
        self,
        digest: str,
        criteria: str = "pixels",
        engine: str = "sequential",
        frame: Optional[int] = None,
    ) -> str:
        """The shard owning one (digest × criteria × engine × frame) key."""
        return self._ring.owner(self.key_for(digest, criteria, engine, frame))

    def trace_digest(self, path: Union[str, Path]) -> str:
        """sha256 of the trace file, memoized per absolute path."""
        abspath = str(Path(path).resolve())
        with self._lock:
            known = self._digests.get(abspath)
        if known is not None:
            return known
        digest = file_digest(abspath)
        with self._lock:
            self._digests[abspath] = digest
        return digest

    # -- submits -------------------------------------------------------- #

    def submit_trace(
        self,
        path: Union[str, Path],
        criteria: str = "pixels",
        engine: str = "sequential",
        frame: Optional[int] = None,
        wait: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Route one trace-file job to its owner (failing over on death)."""
        digest = self.trace_digest(path)
        key = self.key_for(digest, criteria, engine, frame)
        spec: Dict[str, Any] = {
            "trace_ref": digest,
            "criteria": criteria,
            "engine": engine,
        }
        if frame is not None:
            spec["frame"] = frame
        last_error: Optional[ServiceError] = None
        for shard_id in self._ring.preference(key):
            client = self._clients[shard_id]
            try:
                self._ensure_uploaded(shard_id, client, digest, path)
                return client.submit(spec, wait=wait, timeout_s=timeout_s)
            except ServiceError as err:
                if err.code in ("unreachable", "transport"):
                    last_error = err  # dead shard: next preference entry
                    continue
                raise
        assert last_error is not None  # preference() is never empty
        raise last_error

    def submit_workload(
        self,
        workload: str,
        criteria: str = "pixels",
        engine: str = "sequential",
        frame: Optional[int] = None,
        wait: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Route a workload job deterministically (digest unknown up front).

        The routing key is a pseudo-key over the job identity, so every
        client sends repeats of the same question to the same shard —
        which is what makes the shard's digest memo and cache effective.
        After the first run the server replicates the result to the true
        digest-keyed owner, so digest-routed lookups hit too.
        """
        pseudo_key = f"workload:{workload}:{criteria}:{engine}:{frame}"
        spec: Dict[str, Any] = {
            "workload": workload,
            "criteria": criteria,
            "engine": engine,
        }
        if frame is not None:
            spec["frame"] = frame
        last_error: Optional[ServiceError] = None
        for shard_id in self._ring.preference(pseudo_key):
            try:
                return self._clients[shard_id].submit(
                    spec, wait=wait, timeout_s=timeout_s
                )
            except ServiceError as err:
                if err.code in ("unreachable", "transport"):
                    last_error = err
                    continue
                raise
        assert last_error is not None
        raise last_error

    def _ensure_uploaded(
        self,
        shard_id: str,
        client: ServiceClient,
        digest: str,
        path: Union[str, Path],
    ) -> None:
        with self._lock:
            if (shard_id, digest) in self._uploaded:
                return
        # Outside the lock: a concurrent duplicate upload is harmless
        # (content-addressed, atomically renamed) and cheaper than
        # serializing every submit behind one upload.
        if not client.has_trace(digest):
            client.upload_trace(path)
        with self._lock:
            self._uploaded.add((shard_id, digest))

    # -- fleet-wide views ----------------------------------------------- #

    def stats(self) -> Dict[str, Any]:
        """Per-shard snapshots plus the merged fleet aggregate.

        Unreachable shards are reported by id under ``unreachable``
        rather than failing the whole view.
        """
        per_shard: Dict[str, Any] = {}
        unreachable: List[str] = []
        for shard_id, client in self._clients.items():
            try:
                per_shard[shard_id] = client.stats()
            except ServiceError:
                unreachable.append(shard_id)
        return {
            "shards": per_shard,
            "unreachable": unreachable,
            "fleet": merge_snapshots(per_shard.values()),
        }

    def drain(self, shard_id: str) -> Dict[str, Any]:
        """Ask one shard to hand off its warm state and stop."""
        return self._clients[shard_id].drain()

    def shutdown_all(self, drain: bool = True) -> List[str]:
        """Stop every reachable shard; returns the ids that acknowledged."""
        stopped = []
        for shard_id, client in self._clients.items():
            try:
                client.shutdown(drain=drain)
                stopped.append(shard_id)
            except ServiceError:
                continue
        return stopped
