"""Boot and supervise an N-shard fleet of in-process servers.

:class:`FleetSupervisor` solves the bootstrap circularity of a
consistent-hash fleet: every shard needs the full topology (every
shard's TCP port) before it can route, but ports are only known after
binding.  So the supervisor starts every server on ``127.0.0.1:0``
first, collects the kernel-assigned ports into one
:class:`~repro.service.fleet.ring.FleetConfig`, and only then calls
:meth:`~repro.service.server.ProfilingServer.configure_fleet` on each —
after which placement is pure ring math everywhere.

This is the harness the load test, the differential fleet tests, and
the ``fleet-smoke`` CI job share.  A production deployment would boot
the same servers from a config file instead; nothing here is
test-only logic.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from ..server import ProfilingServer
from .ring import DEFAULT_VNODES, FleetConfig, ShardInfo


class FleetSupervisor:
    """Own the lifecycle of ``n_shards`` TCP servers on localhost."""

    def __init__(
        self,
        base_dir: Union[str, Path],
        n_shards: int,
        auth_token: Optional[str] = None,
        workers: int = 2,
        queue_size: int = 16,
        memory_cache_entries: int = 128,
        cache_max_bytes: Optional[int] = None,
        cache_ttl_s: Optional[float] = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"a fleet needs at least one shard, got {n_shards}")
        self._base_dir = Path(base_dir)
        self._n_shards = n_shards
        self._auth_token = auth_token
        self._workers = workers
        self._queue_size = queue_size
        self._memory_cache_entries = memory_cache_entries
        self._cache_max_bytes = cache_max_bytes
        self._cache_ttl_s = cache_ttl_s
        self._vnodes = vnodes
        self.servers: List[ProfilingServer] = []
        self.config: Optional[FleetConfig] = None

    def start(self) -> FleetConfig:
        """Boot every shard, assemble the topology, distribute it."""
        if self.servers:
            raise RuntimeError("fleet already started")
        for index in range(self._n_shards):
            shard_id = f"shard-{index}"
            server = ProfilingServer(
                None,
                self._base_dir / shard_id / "cache",
                workers=self._workers,
                queue_size=self._queue_size,
                memory_cache_entries=self._memory_cache_entries,
                tcp_addr=("127.0.0.1", 0),
                auth_token=self._auth_token,
                cache_max_bytes=self._cache_max_bytes,
                cache_ttl_s=self._cache_ttl_s,
                shard_id=shard_id,
            )
            server.start()
            self.servers.append(server)
        shards = []
        for server in self.servers:
            assert server.tcp_port is not None
            assert server.shard_id is not None
            shards.append(
                ShardInfo(id=server.shard_id, host="127.0.0.1", port=server.tcp_port)
            )
        config = FleetConfig(shards=tuple(shards), vnodes=self._vnodes)
        for server in self.servers:
            assert server.shard_id is not None
            server.configure_fleet(config, server.shard_id)
        self.config = config
        return config

    def server(self, shard_id: str) -> ProfilingServer:
        for candidate in self.servers:
            if candidate.shard_id == shard_id:
                return candidate
        raise KeyError(f"no shard {shard_id!r} in this fleet")

    def kill(self, shard_id: str) -> None:
        """Stop one shard abruptly (the shard-death failover scenario).

        The topology is deliberately *not* updated: surviving shards and
        clients discover the death through connection failures and walk
        the ring's preference order, exactly as they would in production
        before a config push.
        """
        self.server(shard_id).close()

    def stop(self) -> None:
        for server in self.servers:
            server.close()

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
