"""Supervised worker pool: process-per-job execution with a safety net.

Each supervisor thread owns one slot of parallelism.  It pulls a job off
the shared bounded queue and runs :func:`repro.service.jobs.execute_job`
in a **fresh child process**, talking back over a pipe.  The process
boundary is what buys the service its robustness guarantees:

* **Crash isolation** — a worker that segfaults, ``os._exit``\\ s, or is
  OOM-killed takes down only its own process.  The supervisor sees the
  pipe close without a result, records a ``crashed`` attempt, and retries
  the job exactly once (a second crash is reported as a structured job
  error; deterministic crashers must not retry forever).
* **Timeouts** — the supervisor terminates the child when the per-job
  deadline passes.  Timeouts do not retry: a job that spent its budget
  once would spend it again.
* **Cancellation** — a cancel request sets the job's event; the
  supervisor polls it while waiting and terminates the child.

The parallel slicing engine composes cleanly with this: the child
process spawns its own epoch-shard pool internally, so a service job
with ``engine="parallel"`` still fans out across cores.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import protocol
from .jobs import JobSpec, SpecError, execute_job

#: Sentinel the server enqueues to stop a supervisor thread.
_STOP = None

#: How often the supervisor wakes to check deadline and cancellation.
_POLL_S = 0.05


def _mp_context():
    """Prefer fork (cheap, inherits imports); fall back elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _job_process_main(spec_dict: Dict[str, Any], attempt: int, conn) -> None:
    """Child-process entry: run the job, ship (kind, payload) back."""
    try:
        spec = JobSpec(**spec_dict)
        payload = execute_job(spec, attempt=attempt)
        conn.send(("ok", payload))
    except SpecError as err:
        conn.send(("error", {"code": protocol.ERR_JOB_FAILED, "message": str(err)}))
    except Exception as err:  # noqa: BLE001 — the boundary must not leak
        conn.send(
            (
                "error",
                {
                    "code": protocol.ERR_INTERNAL,
                    "message": f"{type(err).__name__}: {err}",
                },
            )
        )
    finally:
        conn.close()


class Attempt:
    """Outcome of one child-process run of a job."""

    __slots__ = ("kind", "payload", "exitcode", "duration_s")

    def __init__(
        self,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        exitcode: Optional[int] = None,
        duration_s: float = 0.0,
    ) -> None:
        self.kind = kind  # ok | error | crashed | timeout | cancelled
        self.payload = payload
        self.exitcode = exitcode
        self.duration_s = duration_s


def run_attempt(
    spec: JobSpec,
    attempt: int,
    timeout_s: float,
    cancel_event: threading.Event,
    mp_context=None,
) -> Attempt:
    """Run one supervised attempt of ``spec`` in a child process."""
    ctx = mp_context if mp_context is not None else _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    # Not daemonic: a daemonic process may not have children, and jobs
    # running engine="parallel" fork their own epoch-shard pool.  The
    # supervisor always joins (or terminates) the child in ``finally``.
    process = ctx.Process(
        target=_job_process_main,
        args=(spec.to_dict(), attempt, child_conn),
        daemon=False,
    )
    start = time.perf_counter()
    process.start()
    child_conn.close()
    deadline = start + timeout_s
    try:
        while True:
            if cancel_event.is_set():
                return Attempt("cancelled", duration_s=time.perf_counter() - start)
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return Attempt("timeout", duration_s=time.perf_counter() - start)
            if parent_conn.poll(min(_POLL_S, remaining)):
                try:
                    kind, payload = parent_conn.recv()
                except EOFError:
                    process.join()
                    return Attempt(
                        "crashed",
                        exitcode=process.exitcode,
                        duration_s=time.perf_counter() - start,
                    )
                process.join()
                return Attempt(
                    kind, payload=payload, duration_s=time.perf_counter() - start
                )
            if not process.is_alive():
                # Died without writing a result (and nothing buffered).
                if parent_conn.poll(0):
                    continue
                process.join()
                return Attempt(
                    "crashed",
                    exitcode=process.exitcode,
                    duration_s=time.perf_counter() - start,
                )
    finally:
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover — last resort
                process.kill()
                process.join()
        parent_conn.close()


class WorkerPool:
    """N supervisor threads draining one bounded job queue.

    The pool knows nothing about the wire protocol or the cache; it calls
    ``on_done(job, attempt, attempts_used)`` for every job it finishes,
    and the server turns that into job state, cache writes, and metrics.
    Jobs must expose ``spec`` (a :class:`JobSpec`), ``timeout_s`` (float)
    and ``cancel_event`` (a ``threading.Event``).
    """

    def __init__(
        self,
        workers: int,
        queue_size: int,
        on_start: Callable[[Any], None],
        on_done: Callable[[Any, Attempt, int], None],
        default_timeout_s: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._workers = workers
        self._on_start = on_start
        self._on_done = on_done
        self._default_timeout_s = default_timeout_s
        self._threads: List[threading.Thread] = []
        self._ctx = _mp_context()
        self._running = 0
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> None:
        for i in range(self._workers):
            thread = threading.Thread(
                target=self._supervise, name=f"service-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop the supervisors after the queue drains (join all)."""
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    # -- submission ----------------------------------------------------- #

    def submit_nowait(self, job) -> None:
        """Enqueue; raises ``queue.Full`` (the server's busy signal)."""
        self._queue.put_nowait(job)

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def running(self) -> int:
        with self._lock:
            return self._running

    def idle(self) -> bool:
        return self._queue.qsize() == 0 and self.running() == 0

    # -- the supervisor loop -------------------------------------------- #

    def _supervise(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            with self._lock:
                self._running += 1
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    self._running -= 1

    def _run_job(self, job) -> None:
        self._on_start(job)
        timeout_s = (
            job.spec.timeout_s
            if job.spec.timeout_s is not None
            else self._default_timeout_s
        )
        attempts = 0
        while True:
            attempt = run_attempt(
                job.spec, attempts, timeout_s, job.cancel_event, self._ctx
            )
            attempts += 1
            if attempt.kind == "crashed" and attempts == 1:
                continue  # retry-once semantics
            self._on_done(job, attempt, attempts)
            return
