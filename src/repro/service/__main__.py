"""Profiling-service CLI: run the daemon or talk to one.

Usage::

    python -m repro.service serve --socket=/tmp/repro.sock --cache-dir=/tmp/repro-cache \\
        [--workers=2] [--queue-size=16] [--job-timeout=300]
    python -m repro.service submit --socket=/tmp/repro.sock --workload=wiki_article \\
        [--criteria=pixels] [--engine=sequential] [--slicer-workers=4] [--frame=N] [--no-wait]
    python -m repro.service submit --socket=/tmp/repro.sock --trace=/tmp/amazon.ucwa ...
    python -m repro.service status --socket=/tmp/repro.sock JOB_ID
    python -m repro.service stats --socket=/tmp/repro.sock
    python -m repro.service shutdown --socket=/tmp/repro.sock [--now]

``submit`` waits for the result by default and prints a one-line summary
plus the cache disposition; ``--no-wait`` returns the job id immediately
(poll with ``status``).  Protocol, cache-key recipe, and failure
semantics are documented in docs/profiling-service.md.  Unknown
subcommands, options, and values exit with status 2; a job that fails
(timeout, crash, error) exits with status 1.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from .client import ServiceClient, ServiceError
from .jobs import JobSpec, SpecError

_COMMANDS = ("serve", "submit", "status", "stats", "shutdown")


def _parse_options(argv: List[str]) -> Optional[Tuple[Dict[str, str], List[str]]]:
    """Split ``--key=value`` / ``--flag`` options from positionals."""
    options: Dict[str, str] = {}
    positional: List[str] = []
    for arg in argv:
        if arg.startswith("--"):
            key, sep, value = arg[2:].partition("=")
            if not key:
                print(f"malformed option {arg!r}", file=sys.stderr)
                return None
            options[key] = value if sep else "true"
        else:
            positional.append(arg)
    return options, positional


def _take_int(options: Dict[str, str], key: str) -> Optional[int]:
    raw = options.pop(key, None)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise SpecError(f"--{key} expects an integer, got {raw!r}") from None


def _take_float(options: Dict[str, str], key: str) -> Optional[float]:
    raw = options.pop(key, None)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise SpecError(f"--{key} expects a number, got {raw!r}") from None


def _require_socket(options: Dict[str, str]) -> Optional[str]:
    path = options.pop("socket", None)
    if not path:
        print("--socket=PATH is required", file=sys.stderr)
        return None
    return path


def _reject_leftovers(options: Dict[str, str], positional: List[str]) -> bool:
    if options:
        print(f"unknown option(s): {', '.join(sorted(options))}", file=sys.stderr)
        return False
    if positional:
        print(f"unexpected argument(s): {', '.join(positional)}", file=sys.stderr)
        return False
    return True


def _serve(argv: List[str]) -> int:
    from .server import ProfilingServer

    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    socket_path = _require_socket(options)
    cache_dir = options.pop("cache-dir", None)
    if not cache_dir:
        print("--cache-dir=DIR is required", file=sys.stderr)
    if socket_path is None or not cache_dir:
        return 2
    try:
        workers = _take_int(options, "workers") or 2
        queue_size = _take_int(options, "queue-size") or 16
        timeout_s = _take_float(options, "job-timeout") or 300.0
    except SpecError as err:
        print(str(err), file=sys.stderr)
        return 2
    if not _reject_leftovers(options, positional):
        return 2
    server = ProfilingServer(
        socket_path,
        cache_dir,
        workers=workers,
        queue_size=queue_size,
        default_timeout_s=timeout_s,
    )
    server.start()
    print(
        f"profiling service listening on {socket_path} "
        f"(workers={workers}, queue={queue_size}, cache={cache_dir})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    print("profiling service stopped")
    return 0


def _print_result(status: Dict) -> int:
    outcome = status.get("outcome")
    if outcome in ("ok", "cache-memory", "cache-disk"):
        result = status["result"]
        via = "sliced" if outcome == "ok" else f"cache hit ({status['cache']})"
        print(
            f"{status['id']}: {result['criteria']} slice "
            f"{result['fraction']:.1%} of {result['total']} records "
            f"[{via}, engine={result['engine']}]"
        )
        return 0
    error = status.get("error") or {}
    print(
        f"{status.get('id', '?')}: {outcome or status.get('state')} — "
        f"{error.get('code', '?')}: {error.get('message', '')}",
        file=sys.stderr,
    )
    return 1


def _submit(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    socket_path = _require_socket(options)
    if socket_path is None:
        return 2
    no_wait = options.pop("no-wait", None) is not None
    try:
        spec = JobSpec(
            workload=options.pop("workload", None),
            trace_path=options.pop("trace", None),
            criteria=options.pop("criteria", "pixels"),
            engine=options.pop("engine", "sequential"),
            workers=_take_int(options, "slicer-workers"),
            frame=_take_int(options, "frame"),
            timeout_s=_take_float(options, "timeout"),
            fault=options.pop("fault", None),
        ).validate()
    except SpecError as err:
        print(f"invalid job spec: {err}", file=sys.stderr)
        return 2
    if not _reject_leftovers(options, positional):
        return 2
    try:
        response = ServiceClient(socket_path).submit(spec, wait=not no_wait)
    except ServiceError as err:
        print(f"submit failed — {err}", file=sys.stderr)
        return 2 if err.code in ("invalid-spec", "unreachable") else 1
    if no_wait:
        print(f"{response['id']}: {response['state']}")
        return 0
    return _print_result(response)


def _status(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    socket_path = _require_socket(options)
    if socket_path is None:
        return 2
    if len(positional) != 1 or options:
        print("usage: status --socket=PATH JOB_ID", file=sys.stderr)
        return 2
    try:
        status = ServiceClient(socket_path).status(positional[0])
    except ServiceError as err:
        print(f"status failed — {err}", file=sys.stderr)
        return 1
    if status.get("state") != "done":
        print(f"{status['id']}: {status['state']}")
        return 0
    return _print_result(status)


def _stats(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    socket_path = _require_socket(options)
    if socket_path is None or not _reject_leftovers(options, positional):
        return 2
    try:
        stats = ServiceClient(socket_path).stats()
    except ServiceError as err:
        print(f"stats failed — {err}", file=sys.stderr)
        return 1
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _shutdown(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    socket_path = _require_socket(options)
    if socket_path is None:
        return 2
    now = options.pop("now", None) is not None
    if not _reject_leftovers(options, positional):
        return 2
    try:
        response = ServiceClient(socket_path).shutdown(drain=not now)
    except ServiceError as err:
        print(f"shutdown failed — {err}", file=sys.stderr)
        return 1
    print("draining" if response.get("draining") else "stopping now")
    return 0


def main(argv: List[str]) -> int:
    if not argv or argv[0] not in _COMMANDS:
        print(__doc__)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "serve":
        return _serve(rest)
    if command == "submit":
        return _submit(rest)
    if command == "status":
        return _status(rest)
    if command == "stats":
        return _stats(rest)
    return _shutdown(rest)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
