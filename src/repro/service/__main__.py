"""Profiling-service CLI: run the daemon or talk to one.

Usage::

    python -m repro.service serve --socket=/tmp/repro.sock --cache-dir=/tmp/repro-cache \\
        [--tcp=HOST:PORT] [--auth-token=SECRET] [--workers=2] [--queue-size=16] \\
        [--job-timeout=300] [--cache-max-bytes=N] [--cache-ttl=SECONDS]
    python -m repro.service submit --socket=/tmp/repro.sock --workload=wiki_article \\
        [--criteria=pixels] [--engine=sequential] [--slicer-workers=4] [--frame=N] [--no-wait]
    python -m repro.service submit --socket=/tmp/repro.sock --trace=/tmp/amazon.ucwa ...
    python -m repro.service submit --socket=tcp:HOST:PORT --auth-token=SECRET \\
        --upload=/tmp/amazon.ucwa [--stream] ...
    python -m repro.service submit --socket=... --trace-ref=SHA256 ...
    python -m repro.service status --socket=/tmp/repro.sock JOB_ID
    python -m repro.service stats --socket=/tmp/repro.sock
    python -m repro.service shutdown --socket=/tmp/repro.sock [--now]
    python -m repro.service loadtest [--shards=4] [--clients=64] [--jobs=2000] \\
        [--rounds=2] [--traces=4] [--p99-budget=0.5] [--warm-target=0.9] [--json]

``--socket`` accepts a Unix path, ``unix:PATH``, or ``tcp:HOST:PORT``
(TCP servers with a shared secret also need ``--auth-token``).
``submit`` waits for the result by default and prints a one-line summary
plus the cache disposition; ``--no-wait`` returns the job id immediately
(poll with ``status``).  ``--upload`` streams a local trace file to the
server in bounded chunks and submits it by content address; with
``--stream`` (incremental engine) every frame is sliced as its epoch
arrives and the per-frame results print instead.  ``loadtest`` boots an
ephemeral localhost fleet and replays a mixed cold/warm submit storm
against the documented budgets (zero drops, warm-hit rate, p99); it
exits 1 if any budget is violated.  Protocol, cache-key recipe, fleet
mode, and failure semantics are documented in
docs/profiling-service.md.  Unknown subcommands, options, and values
exit with status 2; a job that fails (timeout, crash, error) exits with
status 1.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from .client import ServiceClient, ServiceError
from .jobs import JobSpec, SpecError

_COMMANDS = ("serve", "submit", "status", "stats", "shutdown", "loadtest")


def _parse_options(argv: List[str]) -> Optional[Tuple[Dict[str, str], List[str]]]:
    """Split ``--key=value`` / ``--flag`` options from positionals."""
    options: Dict[str, str] = {}
    positional: List[str] = []
    for arg in argv:
        if arg.startswith("--"):
            key, sep, value = arg[2:].partition("=")
            if not key:
                print(f"malformed option {arg!r}", file=sys.stderr)
                return None
            options[key] = value if sep else "true"
        else:
            positional.append(arg)
    return options, positional


def _take_int(options: Dict[str, str], key: str) -> Optional[int]:
    raw = options.pop(key, None)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise SpecError(f"--{key} expects an integer, got {raw!r}") from None


def _take_float(options: Dict[str, str], key: str) -> Optional[float]:
    raw = options.pop(key, None)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise SpecError(f"--{key} expects a number, got {raw!r}") from None


def _require_socket(options: Dict[str, str]) -> Optional[str]:
    path = options.pop("socket", None)
    if not path:
        print("--socket=ENDPOINT is required (PATH, unix:PATH, or tcp:HOST:PORT)",
              file=sys.stderr)
        return None
    return path


def _make_client(options: Dict[str, str], endpoint: str) -> Optional[ServiceClient]:
    auth_token = options.pop("auth-token", None)
    try:
        return ServiceClient(endpoint, auth_token=auth_token)
    except ValueError as err:
        print(str(err), file=sys.stderr)
        return None


def _reject_leftovers(options: Dict[str, str], positional: List[str]) -> bool:
    if options:
        print(f"unknown option(s): {', '.join(sorted(options))}", file=sys.stderr)
        return False
    if positional:
        print(f"unexpected argument(s): {', '.join(positional)}", file=sys.stderr)
        return False
    return True


def _serve(argv: List[str]) -> int:
    from .server import ProfilingServer

    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    socket_path = options.pop("socket", None)
    tcp_raw = options.pop("tcp", None)
    auth_token = options.pop("auth-token", None)
    cache_dir = options.pop("cache-dir", None)
    if not cache_dir:
        print("--cache-dir=DIR is required", file=sys.stderr)
        return 2
    if not socket_path and not tcp_raw:
        print("--socket=PATH and/or --tcp=HOST:PORT is required", file=sys.stderr)
        return 2
    tcp_addr: Optional[Tuple[str, int]] = None
    if tcp_raw:
        host, sep, port_text = tcp_raw.rpartition(":")
        try:
            tcp_addr = (host, int(port_text))
        except ValueError:
            sep = ""
        if not sep or not host:
            print(f"--tcp expects HOST:PORT, got {tcp_raw!r}", file=sys.stderr)
            return 2
    try:
        workers = _take_int(options, "workers") or 2
        queue_size = _take_int(options, "queue-size") or 16
        timeout_s = _take_float(options, "job-timeout") or 300.0
        cache_max_bytes = _take_int(options, "cache-max-bytes")
        cache_ttl_s = _take_float(options, "cache-ttl")
    except SpecError as err:
        print(str(err), file=sys.stderr)
        return 2
    if not _reject_leftovers(options, positional):
        return 2
    server = ProfilingServer(
        socket_path,
        cache_dir,
        workers=workers,
        queue_size=queue_size,
        default_timeout_s=timeout_s,
        tcp_addr=tcp_addr,
        auth_token=auth_token,
        cache_max_bytes=cache_max_bytes,
        cache_ttl_s=cache_ttl_s,
    )
    server.start()
    listening = " and ".join(
        part
        for part in (
            socket_path,
            f"tcp:{tcp_addr[0]}:{server.tcp_port}" if tcp_addr else None,
        )
        if part
    )
    print(
        f"profiling service listening on {listening} "
        f"(workers={workers}, queue={queue_size}, cache={cache_dir})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    print("profiling service stopped")
    return 0


def _print_result(status: Dict) -> int:
    outcome = status.get("outcome")
    if outcome in ("ok", "cache-memory", "cache-disk"):
        result = status["result"]
        via = "sliced" if outcome == "ok" else f"cache hit ({status['cache']})"
        shard = status.get("shard")
        where = f", shard={shard}" if shard else ""
        print(
            f"{status['id']}: {result['criteria']} slice "
            f"{result['fraction']:.1%} of {result['total']} records "
            f"[{via}, engine={result['engine']}{where}]"
        )
        return 0
    error = status.get("error") or {}
    print(
        f"{status.get('id', '?')}: {outcome or status.get('state')} — "
        f"{error.get('code', '?')}: {error.get('message', '')}",
        file=sys.stderr,
    )
    return 1


def _print_streamed(response: Dict) -> int:
    frames = response.get("frames") or []
    print(
        f"streamed {response.get('bytes', 0)} bytes "
        f"(digest {str(response.get('digest', ''))[:16]}…, "
        f"checkpoint {response.get('checkpoint')}), "
        f"{len(frames)} frame(s) sliced in {response.get('slice_s', 0.0):.3f}s"
    )
    for frame in frames:
        print(
            f"  frame {frame['frame_id']}: {frame['in_slice']}/{frame['n_records']} "
            f"records in slice [{frame['criteria']}]"
        )
    return 0


def _submit(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    endpoint = _require_socket(options)
    if endpoint is None:
        return 2
    no_wait = options.pop("no-wait", None) is not None
    upload = options.pop("upload", None)
    stream = options.pop("stream", None) is not None
    try:
        spec = JobSpec(
            workload=options.pop("workload", None),
            trace_path=options.pop("trace", None),
            trace_ref=options.pop("trace-ref", None),
            criteria=options.pop("criteria", "pixels"),
            engine=options.pop("engine", "sequential"),
            workers=_take_int(options, "slicer-workers"),
            frame=_take_int(options, "frame"),
            timeout_s=_take_float(options, "timeout"),
            fault=options.pop("fault", None),
        )
        if upload is None:
            spec = spec.validate()
        else:
            # The uploaded bytes are the target; reject a second one but
            # validate everything else (engine, criteria, frame...) so
            # bad values still exit 2 before any bytes move.
            if spec.workload or spec.trace_path or spec.trace_ref:
                raise SpecError(
                    "--upload provides the analysis target; drop "
                    "--workload/--trace/--trace-ref"
                )
            placeholder = "0" * 64  # replaced by the real digest server-side
            JobSpec(**{**spec.to_dict(), "trace_ref": placeholder}).validate()
        if stream and upload is None:
            raise SpecError("--stream requires --upload=FILE")
        if stream and spec.engine != "incremental":
            raise SpecError("--stream requires --engine=incremental")
    except SpecError as err:
        print(f"invalid job spec: {err}", file=sys.stderr)
        return 2
    client = _make_client(options, endpoint)
    if client is None or not _reject_leftovers(options, positional):
        return 2
    try:
        if upload is not None:
            wire = spec.to_dict()
            for target_field in ("workload", "trace_path", "trace_ref"):
                wire.pop(target_field, None)
            response = client.upload_trace(
                upload, spec=wire, wait=not no_wait, stream=stream
            )
        else:
            response = client.submit(spec, wait=not no_wait)
    except OSError as err:
        print(f"submit failed — cannot read {upload!r}: {err}", file=sys.stderr)
        return 2
    except ServiceError as err:
        print(f"submit failed — {err}", file=sys.stderr)
        return 2 if err.code in ("invalid-spec", "unreachable") else 1
    if stream:
        return _print_streamed(response)
    if no_wait:
        print(f"{response['id']}: {response['state']}")
        return 0
    return _print_result(response)


def _status(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    endpoint = _require_socket(options)
    if endpoint is None:
        return 2
    client = _make_client(options, endpoint)
    if client is None:
        return 2
    if len(positional) != 1 or options:
        print("usage: status --socket=ENDPOINT JOB_ID", file=sys.stderr)
        return 2
    try:
        status = client.status(positional[0])
    except ServiceError as err:
        print(f"status failed — {err}", file=sys.stderr)
        return 1
    if status.get("state") != "done":
        print(f"{status['id']}: {status['state']}")
        return 0
    return _print_result(status)


def _stats(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    endpoint = _require_socket(options)
    if endpoint is None:
        return 2
    client = _make_client(options, endpoint)
    if client is None or not _reject_leftovers(options, positional):
        return 2
    try:
        stats = client.stats()
    except ServiceError as err:
        print(f"stats failed — {err}", file=sys.stderr)
        return 1
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _shutdown(argv: List[str]) -> int:
    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    endpoint = _require_socket(options)
    if endpoint is None:
        return 2
    now = options.pop("now", None) is not None
    client = _make_client(options, endpoint)
    if client is None or not _reject_leftovers(options, positional):
        return 2
    try:
        response = client.shutdown(drain=not now)
    except ServiceError as err:
        print(f"shutdown failed — {err}", file=sys.stderr)
        return 1
    print("draining" if response.get("draining") else "stopping now")
    return 0


def _loadtest(argv: List[str]) -> int:
    from .fleet.loadtest import LoadtestConfig, render_report, run_loadtest

    parsed = _parse_options(argv)
    if parsed is None:
        return 2
    options, positional = parsed
    as_json = options.pop("json", None) is not None
    defaults = LoadtestConfig()
    try:
        config = LoadtestConfig(
            shards=_take_int(options, "shards") or defaults.shards,
            clients=_take_int(options, "clients") or defaults.clients,
            jobs=_take_int(options, "jobs") or defaults.jobs,
            rounds=_take_int(options, "rounds") or defaults.rounds,
            traces=_take_int(options, "traces") or defaults.traces,
            workers=_take_int(options, "workers") or defaults.workers,
            queue_size=_take_int(options, "queue-size") or defaults.queue_size,
            seed=_take_int(options, "seed") or defaults.seed,
            records_per_frame=_take_int(options, "records-per-frame")
            or defaults.records_per_frame,
            p99_budget_s=_take_float(options, "p99-budget")
            or defaults.p99_budget_s,
            warm_hit_target=_take_float(options, "warm-target")
            or defaults.warm_hit_target,
        )
    except SpecError as err:
        print(str(err), file=sys.stderr)
        return 2
    if not _reject_leftovers(options, positional):
        return 2
    report = run_loadtest(
        config, log=None if as_json else lambda line: print(line, file=sys.stderr)
    )
    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 1 if report.check() else 0


def main(argv: List[str]) -> int:
    if not argv or argv[0] not in _COMMANDS:
        print(__doc__)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "serve":
        return _serve(rest)
    if command == "submit":
        return _submit(rest)
    if command == "status":
        return _status(rest)
    if command == "stats":
        return _stats(rest)
    if command == "loadtest":
        return _loadtest(rest)
    return _shutdown(rest)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
