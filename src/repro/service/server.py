"""The profiling daemon: socket front ends, job registry, cache glue.

One :class:`ProfilingServer` owns

* a Unix-domain listener speaking the length-prefixed JSON protocol,
  one handler thread per connection — and, for fleet deployments, a TCP
  listener speaking the identical protocol behind a shared-secret
  ``auth`` handshake (per-connection auth state; every op before a
  successful handshake is refused with ``auth-required``);
* a bounded job queue drained by the supervised
  :class:`~repro.service.worker.WorkerPool` — a full queue rejects the
  submit with an explicit ``busy`` error rather than blocking the
  client (backpressure is a response, not a hang);
* the content-addressed :class:`~repro.service.cache.ResultCache` (with
  optional byte budget + TTL) plus the workload→digest memo, probed at
  submit time so a warm submit completes in the connection handler
  without ever touching the queue;
* an upload registry of streamed traces (``trace-begin`` /
  ``trace-chunk`` / ``trace-end``), digest-verified and
  content-addressed, so ``trace_ref`` submits never re-ship or re-hash
  bytes;
* an in-flight fingerprint map that coalesces concurrent submits of the
  identical job onto one execution;
* :class:`~repro.service.metrics.ServiceMetrics` behind the ``stats``
  endpoint (labelled per shard in fleet mode).

In fleet mode (:meth:`configure_fleet`) every server holds the shared
:class:`~repro.service.fleet.FleetConfig` and routes each submit whose
cache key it does not own to the key's ring owner — forwarding the
trace bytes first if the owner has not seen them — so repeat questions
always land on the shard holding the warm entry.  Locally-run jobs
whose key belongs elsewhere replicate their result to the owner, and a
``drain`` request ships the shard's hot cache entries and incremental
checkpoints to their post-departure owners before stopping.

Shutdown is graceful by default: a ``shutdown`` request flips the server
into draining mode (new submits are refused with ``shutting-down``),
running and queued jobs finish, and only then does the listener close.
``mode="now"`` additionally cancels queued and running jobs first.
"""

from __future__ import annotations

import base64
import hmac
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..trace.store import file_digest
from . import protocol
from .cache import ResultCache, WorkloadDigestMemo, cache_key
from .client import ServiceClient, ServiceError
from .fleet.ring import FleetConfig, HashRing
from .fleet.upload import UploadError, UploadSession, UploadStore
from .jobs import JobSpec, SpecError
from .metrics import ServiceMetrics
from .worker import Attempt, WorkerPool

#: Entries per ``handoff`` request during a drain (keeps each frame well
#: under the protocol's message cap even for fat result payloads).
HANDOFF_BATCH = 64

#: At most this many cache entries ship during a drain — the *hot* end
#: of the LRU order; a cold tail is cheaper to recompute than to copy.
HANDOFF_MAX_ENTRIES = 512


@dataclass
class Job:
    """Server-side state of one submitted job."""

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = "queued"  # queued | running | done
    outcome: Optional[str] = None  # see metrics.OUTCOMES
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cache_tier: Optional[str] = None  # memory | disk, for cache outcomes
    attempts: int = 0
    coalesced_submits: int = 0
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)

    def status_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "coalesced_submits": self.coalesced_submits,
            "cache": self.cache_tier,
            "spec": self.spec.to_dict(),
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        if self.started_at is not None:
            payload["queue_wait_s"] = self.started_at - self.submitted_at
        if self.finished_at is not None and self.started_at is not None:
            payload["run_s"] = self.finished_at - self.started_at
        return payload


class _ConnState:
    """Per-connection protocol state: auth progress + in-flight upload."""

    __slots__ = ("authed", "close", "upload", "upload_error")

    def __init__(self, authed: bool) -> None:
        self.authed = authed
        self.close = False
        self.upload: Optional[UploadSession] = None
        #: a failure raised by an (unacknowledged) trace-chunk frame,
        #: parked here until the next responding frame reports it
        self.upload_error: Optional[Dict[str, Any]] = None


class ProfilingServer:
    """Long-running profiling daemon on a Unix socket and/or TCP port."""

    def __init__(
        self,
        socket_path: Optional[Union[str, Path]],
        cache_dir: Union[str, Path],
        workers: int = 2,
        queue_size: int = 16,
        default_timeout_s: float = 300.0,
        memory_cache_entries: int = 128,
        tcp_addr: Optional[Tuple[str, int]] = None,
        auth_token: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        cache_ttl_s: Optional[float] = None,
        shard_id: Optional[str] = None,
    ) -> None:
        self._socket_path = str(socket_path) if socket_path is not None else None
        self._tcp_addr = tcp_addr
        self._tcp_port: Optional[int] = None
        self._auth_token = auth_token
        self._cache_dir = Path(cache_dir)
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(
            self._cache_dir,
            memory_cache_entries,
            max_bytes=cache_max_bytes,
            ttl_s=cache_ttl_s,
        )
        self.memo = WorkloadDigestMemo(self._cache_dir)
        self.uploads = UploadStore(self._cache_dir / "uploads")
        self.metrics = ServiceMetrics(
            labels={"shard": shard_id} if shard_id else None
        )
        self._pool = WorkerPool(
            workers,
            queue_size,
            on_start=self._job_started,
            on_done=self._job_done,
            default_timeout_s=default_timeout_s,
        )
        self._workers = workers
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> job id
        self._next_id = 0
        self._lock = threading.Lock()
        self._draining = False
        self._listener: Optional[socket.socket] = None
        self._tcp_listener: Optional[socket.socket] = None
        self._accept_threads: List[threading.Thread] = []
        self._closed = threading.Event()
        self._fleet: Optional[FleetConfig] = None
        self._ring: Optional[HashRing] = None
        self._shard_id = shard_id
        self._peers: Dict[str, ServiceClient] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Bind the socket(s) and start the pool + accept thread(s)."""
        if self._socket_path is None and self._tcp_addr is None:
            raise ValueError("server needs a unix socket path, a TCP address, or both")
        if self._socket_path is not None:
            if os.path.exists(self._socket_path):
                os.unlink(self._socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self._socket_path)
            listener.listen(64)
            self._listener = listener
            # Unix connections are pre-authorized: the socket file's
            # filesystem permissions are the access control.
            self._spawn_accept(listener, require_auth=False)
        if self._tcp_addr is not None:
            host, port = self._tcp_addr
            tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            tcp.bind((host, port))
            tcp.listen(128)
            self._tcp_port = tcp.getsockname()[1]
            self._tcp_listener = tcp
            self._spawn_accept(tcp, require_auth=self._auth_token is not None)
        self._pool.start()

    def _spawn_accept(self, listener: socket.socket, require_auth: bool) -> None:
        thread = threading.Thread(
            target=self._accept_loop,
            args=(listener, require_auth),
            name="service-accept",
            daemon=True,
        )
        thread.start()
        self._accept_threads.append(thread)

    def configure_fleet(self, fleet: FleetConfig, shard_id: str) -> None:
        """Join a fleet: adopt the shared topology and this server's identity.

        Placement is pure ring math over the config, so every shard (and
        every client) holding an equal config agrees on ownership with no
        further coordination.
        """
        fleet.shard(shard_id)  # raises KeyError if we're not in the config
        with self._lock:
            self._fleet = fleet
            self._ring = fleet.ring()
            self._shard_id = shard_id
            self._peers.clear()
        self.metrics.set_label("shard", shard_id)

    def serve_forever(self) -> None:
        """Block until a shutdown request (or :meth:`close`) completes."""
        self._closed.wait()

    def close(self) -> None:
        """Immediate local shutdown (tests / ``finally`` blocks)."""
        self._shutdown(drain=False)

    @property
    def socket_path(self) -> Optional[str]:
        return self._socket_path

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (None before :meth:`start` or without TCP)."""
        return self._tcp_port

    @property
    def shard_id(self) -> Optional[str]:
        return self._shard_id

    def _shutdown(self, drain: bool) -> None:
        with self._lock:
            if self._closed.is_set():
                return
            self._draining = True
        if not drain:
            for job in list(self._jobs.values()):
                job.cancel_event.set()
        while not self._pool.idle():
            time.sleep(0.02)
        self._pool.stop()
        for listener in (self._listener, self._tcp_listener):
            if listener is not None:
                # shutdown() before close(): worker processes forked by
                # the pool inherit the listening fd, so close() alone
                # leaves the kernel socket accepting (and a thread
                # blocked in accept() would keep serving a "dead"
                # shard); shutdown() kills the socket for every holder.
                try:
                    listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    listener.close()
                except OSError:  # pragma: no cover
                    pass
        if self._socket_path is not None and os.path.exists(self._socket_path):
            try:
                os.unlink(self._socket_path)
            except OSError:  # pragma: no cover
                pass
        self._closed.set()

    # ------------------------------------------------------------------ #
    # Connection handling                                                #
    # ------------------------------------------------------------------ #

    def _accept_loop(self, listener: socket.socket, require_auth: bool) -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:  # listener closed
                return
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn, require_auth),
                daemon=True,
            )
            thread.start()

    def _handle_connection(
        self, conn: socket.socket, require_auth: bool = False
    ) -> None:
        state = _ConnState(authed=not require_auth)
        try:
            while True:
                try:
                    request = protocol.recv_message(conn)
                except protocol.ProtocolError as err:
                    protocol.send_message(
                        conn, protocol.error(protocol.ERR_BAD_REQUEST, str(err))
                    )
                    return
                if request is None:
                    return
                try:
                    response = self._dispatch(request, state)
                except Exception as err:  # noqa: BLE001 — handler boundary
                    response = protocol.error(
                        protocol.ERR_INTERNAL, f"{type(err).__name__}: {err}"
                    )
                if response is not None:
                    protocol.send_message(conn, response)
                if state.close:
                    return
        except OSError:
            pass  # client went away; cleanup below
        finally:
            if state.upload is not None:
                # Connection dropped between trace-begin and trace-end:
                # the truncated spool must never register.
                state.upload.abort()
                state.upload = None
                self.metrics.increment("uploads_aborted")
            conn.close()

    def _dispatch(
        self, request: Dict[str, Any], state: Optional[_ConnState] = None
    ) -> Optional[Dict[str, Any]]:
        """Route one request; ``None`` means no response frame (trace-chunk)."""
        if state is None:
            state = _ConnState(authed=True)
        op = request.get("op")
        if op == "auth":
            return self._handle_auth(request, state)
        if not state.authed:
            state.close = True
            return protocol.error(
                protocol.ERR_AUTH_REQUIRED,
                "this transport requires an auth handshake before any other op",
            )
        if op == "ping":
            return protocol.ok(pong=True)
        if op == "submit":
            return self._handle_submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "wait":
            return self._handle_wait(request)
        if op == "cancel":
            return self._handle_cancel(request)
        if op == "stats":
            return protocol.ok(stats=self.stats())
        if op == "shutdown":
            return self._handle_shutdown(request)
        if op == "trace-begin":
            return self._handle_trace_begin(state)
        if op == "trace-chunk":
            return self._handle_trace_chunk(request, state)
        if op == "trace-end":
            return self._handle_trace_end(request, state)
        if op == "has-trace":
            return self._handle_has_trace(request)
        if op == "handoff":
            return self._handle_handoff(request)
        if op == "drain":
            return self._handle_drain()
        if op == "ring":
            return self._handle_ring()
        return protocol.error(protocol.ERR_BAD_REQUEST, f"unknown op {op!r}")

    def _handle_auth(
        self, request: Dict[str, Any], state: _ConnState
    ) -> Dict[str, Any]:
        token = request.get("token")
        if self._auth_token is None:
            state.authed = True  # no secret configured: auth is a no-op
            return protocol.ok(authed=True)
        if isinstance(token, str) and hmac.compare_digest(
            token.encode("utf-8"), self._auth_token.encode("utf-8")
        ):
            state.authed = True
            return protocol.ok(authed=True)
        state.close = True  # one strike: a bad token costs the connection
        self.metrics.increment("auth_failures")
        return protocol.error(
            protocol.ERR_AUTH_FAILED, "shared-secret token rejected"
        )

    # ------------------------------------------------------------------ #
    # Streaming trace upload                                             #
    # ------------------------------------------------------------------ #

    def _handle_trace_begin(self, state: _ConnState) -> Dict[str, Any]:
        from .fleet.upload import MAX_CHUNK_BYTES

        if self._draining:
            return protocol.error(protocol.ERR_SHUTTING_DOWN, "server is draining")
        if state.upload is not None:
            state.upload.abort()
            state.upload = None
            return protocol.error(
                protocol.ERR_BAD_UPLOAD,
                "trace-begin while an upload was already in flight",
            )
        state.upload = self.uploads.session()
        state.upload_error = None
        self.metrics.increment("uploads_started")
        return protocol.ok(upload=True, chunk_limit=MAX_CHUNK_BYTES)

    def _handle_trace_chunk(
        self, request: Dict[str, Any], state: _ConnState
    ) -> None:
        """Spool one chunk.  Never responds — errors park on the state and
        are reported by the next responding frame (``trace-end``)."""
        if state.upload_error is not None:
            return None  # already failed; drain remaining chunks silently
        if state.upload is None:
            state.upload_error = protocol.error(
                protocol.ERR_BAD_UPLOAD, "trace-chunk without trace-begin"
            )
            return None
        data = request.get("data")
        raw: Optional[bytes] = None
        if isinstance(data, str):
            try:
                raw = base64.b64decode(data, validate=True)
            except ValueError:
                raw = None
        if raw is None:
            state.upload_error = protocol.error(
                protocol.ERR_BAD_UPLOAD, "trace-chunk data must be base64"
            )
            state.upload.abort()
            state.upload = None
            return None
        try:
            state.upload.append(raw)
        except UploadError as err:
            state.upload_error = protocol.error(err.code, err.message)
            state.upload.abort()
            state.upload = None
        return None

    def _handle_trace_end(
        self, request: Dict[str, Any], state: _ConnState
    ) -> Dict[str, Any]:
        if state.upload_error is not None:
            response = state.upload_error
            state.upload_error = None
            if state.upload is not None:
                state.upload.abort()
                state.upload = None
            self.metrics.increment("uploads_failed")
            return response
        if state.upload is None:
            return protocol.error(
                protocol.ERR_BAD_UPLOAD, "trace-end without trace-begin"
            )
        digest = request.get("digest")
        if not isinstance(digest, str):
            state.upload.abort()
            state.upload = None
            return protocol.error(
                protocol.ERR_BAD_REQUEST, "trace-end needs the client's digest"
            )
        upload = state.upload
        state.upload = None
        try:
            finished = upload.finish(digest)
        except UploadError as err:
            self.metrics.increment("uploads_failed")
            return protocol.error(err.code, err.message)
        self.metrics.increment("uploads_ok")
        self.metrics.increment("upload_bytes", finished.size)
        spec_data = request.get("spec")
        if spec_data is None:
            return protocol.ok(digest=finished.digest, bytes=finished.size)
        if not isinstance(spec_data, dict):
            return protocol.error(
                protocol.ERR_INVALID_SPEC, "trace-end spec must be an object"
            )
        if request.get("stream"):
            return self._stream_slice_response(finished, spec_data)
        spec_data = dict(spec_data)
        spec_data["trace_ref"] = finished.digest
        response = self._submit_spec(
            spec_data,
            wait=bool(request.get("wait", True)),
            forwarded=bool(request.get("forwarded", False)),
        )
        if response.get("ok"):
            response["digest"] = finished.digest
            response["uploaded_bytes"] = finished.size
        return response

    def _stream_slice_response(
        self, finished: Any, spec_data: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Slice every frame of a just-finished upload, epoch by epoch.

        Runs in the connection handler (not a worker): the whole point is
        producing per-frame results as the spooled stream is consumed,
        with bounded memory.  The checkpoint persists under the shared
        naming rule, so the streamed pass leaves later per-frame submits
        of the same digest warm.
        """
        from ..profiler.incremental import (
            SliceCheckpoint,
            checkpoint_path_for,
            stream_slice,
        )

        spec_data = dict(spec_data)
        spec_data["trace_ref"] = finished.digest
        try:
            spec = JobSpec.from_dict(spec_data)
        except (SpecError, TypeError) as err:
            self.metrics.increment("invalid_specs")
            return protocol.error(protocol.ERR_INVALID_SPEC, str(err))
        if spec.engine != "incremental":
            return protocol.error(
                protocol.ERR_INVALID_SPEC,
                f"stream slicing requires engine='incremental', got {spec.engine!r}",
            )
        ckpt_dir = self._cache_dir / "checkpoints"
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        ckpt_path = checkpoint_path_for(finished.digest, ckpt_dir)
        checkpoint = None
        checkpoint_state = "cold"
        if ckpt_path.exists():
            try:
                checkpoint = SliceCheckpoint.load(ckpt_path)
                checkpoint_state = "warm"
            except ValueError:
                checkpoint = None  # torn/stale file: rebuild from scratch
        if checkpoint is None:
            checkpoint = SliceCheckpoint(trace_digest=finished.digest)
        t0 = time.perf_counter()
        frames: List[Dict[str, Any]] = []
        import hashlib as _hashlib

        for result in stream_slice(str(finished.path), checkpoint=checkpoint):
            frames.append(
                {
                    "frame_id": result.frame_id,
                    "kind": result.kind,
                    "lo": result.lo,
                    "hi": result.hi,
                    "n_records": result.n_records(),
                    "in_slice": result.in_slice,
                    "criteria": result.criteria_name,
                    "flags_sha256": _hashlib.sha256(
                        bytes(result.flags)
                    ).hexdigest(),
                }
            )
        checkpoint.trace_digest = finished.digest
        checkpoint.save(ckpt_path)
        elapsed = time.perf_counter() - t0
        self.metrics.increment("stream_slices")
        self.metrics.observe("slice", elapsed)
        return protocol.ok(
            digest=finished.digest,
            bytes=finished.size,
            streamed=True,
            checkpoint=checkpoint_state,
            frames=frames,
            slice_s=elapsed,
        )

    def _handle_has_trace(self, request: Dict[str, Any]) -> Dict[str, Any]:
        digest = request.get("digest")
        if not isinstance(digest, str):
            return protocol.error(
                protocol.ERR_BAD_REQUEST, "has-trace needs a digest"
            )
        return protocol.ok(digest=digest, present=self.uploads.has(digest))

    # ------------------------------------------------------------------ #
    # Submit path                                                        #
    # ------------------------------------------------------------------ #

    def _probe_digest(self, spec: JobSpec) -> Optional[str]:
        """The job's trace digest, when knowable without running it."""
        if spec.trace_ref is not None:
            return spec.trace_ref  # the ref *is* the digest
        if spec.trace_path is not None:
            try:
                return file_digest(spec.trace_path)
            except OSError:
                return None  # surfaced as a job error by the worker
        assert spec.workload is not None
        return self.memo.get(spec.workload)

    def _handle_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            spec = JobSpec.from_dict(request.get("spec") or {})
        except (SpecError, TypeError) as err:
            self.metrics.increment("invalid_specs")
            return protocol.error(protocol.ERR_INVALID_SPEC, str(err))
        return self._submit_spec(
            spec,
            wait=bool(request.get("wait", False)),
            forwarded=bool(request.get("forwarded", False)),
        )

    def _submit_spec(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        wait: bool,
        forwarded: bool = False,
    ) -> Dict[str, Any]:
        if isinstance(spec, dict):
            try:
                spec = JobSpec.from_dict(spec)
            except (SpecError, TypeError) as err:
                self.metrics.increment("invalid_specs")
                return protocol.error(protocol.ERR_INVALID_SPEC, str(err))
        self.metrics.increment("submits")

        # Fleet routing: a submit whose cache key belongs to another
        # shard is proxied there (trace bytes first, if the owner has
        # not seen them).  ``forwarded`` marks a request that already
        # hopped once — it always executes here, so routing disagreement
        # can never loop.
        if not forwarded:
            route = self._route(spec)
            if route is not None:
                owner = route[1]
                if owner != self._shard_id:
                    response = self._forward_submit(spec, owner, wait)
                    if response is not None:
                        return response
                    # Owner unreachable: serve locally (ring failover).

        spec = self._localize(spec)
        if spec.trace_ref is not None and not self.uploads.has(spec.trace_ref):
            return protocol.error(
                protocol.ERR_NO_SUCH_TRACE,
                f"no uploaded trace {spec.trace_ref[:16]}…; stream it first",
            )

        fingerprint = spec.fingerprint()
        coalesced = False
        with self._lock:
            if self._draining:
                return protocol.error(
                    protocol.ERR_SHUTTING_DOWN, "server is draining"
                )
            # Coalesce onto an in-flight identical job.
            existing_id = self._inflight.get(fingerprint)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.coalesced_submits += 1
                self.metrics.increment("coalesced")
                coalesced = True
            else:
                job = self._admit_job(spec, fingerprint)
                if isinstance(job, dict):
                    return job  # busy rejection
        # The wait (if any) happens outside the lock: _job_done needs the
        # lock to retire the in-flight entry before it sets job.done.
        return self._submit_response(job, wait, coalesced=coalesced)

    def _localize(self, spec: JobSpec) -> JobSpec:
        """Inject this server's directories into a spec it will run."""
        if spec.engine == "incremental" and spec.checkpoint_dir is None:
            # frames-incremental path: successive frame submits of one
            # trace digest share a persisted checkpoint under the cache
            # dir, so each pays only the per-frame delta.
            spec = replace(
                spec, checkpoint_dir=str(self._cache_dir / "checkpoints")
            )
        if spec.trace_ref is not None and spec.upload_dir is None:
            spec = replace(spec, upload_dir=str(self.uploads.directory))
        return spec

    def _route(self, spec: JobSpec) -> Optional[Tuple[str, str]]:
        """``(cache key, owning shard)`` when fleet routing applies."""
        ring = self._ring
        if ring is None or self._shard_id is None or len(ring) < 2:
            return None
        if spec.fault is not None:
            return None  # fault injection tests *this* shard's failure paths
        digest = self._probe_digest(spec)
        if digest is None:
            return None  # first sight of a workload: run here, replicate after
        key = cache_key(digest, spec.criteria, spec.engine, spec.frame)
        return key, ring.owner(key)

    def _peer(self, shard_id: str) -> ServiceClient:
        assert self._fleet is not None
        with self._lock:
            client = self._peers.get(shard_id)
            if client is None:
                info = self._fleet.shard(shard_id)
                client = ServiceClient(
                    info.endpoint,
                    connect_timeout_s=2.0,
                    auth_token=self._auth_token,
                )
                self._peers[shard_id] = client
        return client

    def _forward_submit(
        self, spec: JobSpec, owner: str, wait: bool
    ) -> Optional[Dict[str, Any]]:
        """Proxy a submit to the key's owner.

        Returns the owner's response (errors included — backpressure and
        spec failures propagate untouched), or ``None`` when the owner is
        unreachable, which tells the caller to serve the job locally.
        """
        peer = self._peer(owner)
        wire = spec.to_dict()
        # Directories are server-local; the owner injects its own.
        wire.pop("checkpoint_dir", None)
        wire.pop("upload_dir", None)
        try:
            if (
                spec.trace_ref is not None
                and self.uploads.has(spec.trace_ref)
                and not peer.has_trace(spec.trace_ref)
            ):
                peer.upload_trace(self.uploads.path(spec.trace_ref))
            response = peer.request(
                {"op": "submit", "spec": wire, "wait": wait, "forwarded": True},
                timeout_s=None,
            )
        except ServiceError as err:
            if err.code in ("unreachable", "transport"):
                self.metrics.increment("forward_failovers")
                return None
            return protocol.error(err.code, err.message)
        self.metrics.increment("forwarded")
        response["forwarded_by"] = self._shard_id
        return response

    def _admit_job(
        self, spec: JobSpec, fingerprint: str
    ) -> Union[Job, Dict[str, Any]]:
        """Cache-probe then enqueue one new job; caller holds the lock."""
        # Content-addressed fast path: a known digest whose result is
        # already cached never touches the queue.
        if spec.fault is None:
            digest = self._probe_digest(spec)
            if digest is not None:
                key = cache_key(digest, spec.criteria, spec.engine, spec.frame)
                found = self.cache.lookup(key)
                if found is not None:
                    payload, tier = found
                    job = self._new_job(spec, fingerprint)
                    job.state = "done"
                    job.outcome = f"cache-{tier}"
                    job.cache_tier = tier
                    job.result = payload
                    job.started_at = job.submitted_at
                    job.finished_at = time.perf_counter()
                    job.done.set()
                    self.metrics.outcome(f"cache-{tier}")
                    self.metrics.observe("total", 0.0)
                    return job

        job = self._new_job(spec, fingerprint)
        self._inflight[fingerprint] = job.id
        try:
            self._pool.submit_nowait(job)
        except queue.Full:
            del self._jobs[job.id]
            del self._inflight[fingerprint]
            self.metrics.increment("busy_rejected")
            return protocol.error(
                protocol.ERR_BUSY,
                f"job queue is full ({self._pool.queue_depth()} queued)",
            )
        return job

    def _new_job(self, spec: JobSpec, fingerprint: str) -> Job:
        self._next_id += 1
        job = Job(id=f"job-{self._next_id}", spec=spec, fingerprint=fingerprint)
        self._jobs[job.id] = job
        return job

    def _submit_response(
        self, job: Job, wait: bool, coalesced: bool = False
    ) -> Dict[str, Any]:
        if wait:
            job.done.wait()
        response = protocol.ok(coalesced=coalesced, **job.status_payload())
        if self._shard_id is not None:
            response["shard"] = self._shard_id
        return response

    # ------------------------------------------------------------------ #
    # Fleet coordination                                                 #
    # ------------------------------------------------------------------ #

    def _handle_ring(self) -> Dict[str, Any]:
        fleet = self._fleet.to_dict() if self._fleet is not None else None
        return protocol.ok(shard=self._shard_id, fleet=fleet)

    def _handle_handoff(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Ingest warm entries from a draining peer (or a replication put)."""
        entries = request.get("entries")
        if not isinstance(entries, list):
            return protocol.error(
                protocol.ERR_BAD_REQUEST, "handoff needs an entries list"
            )
        from ..trace.checkpoint import CHECKPOINT_SUFFIX

        accepted = 0
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind")
            if kind == "result":
                key = entry.get("key")
                payload = entry.get("payload")
                if (
                    isinstance(key, str)
                    and len(key) == 64
                    and isinstance(payload, dict)
                ):
                    self.cache.put(key, payload)
                    accepted += 1
            elif kind == "checkpoint":
                name = entry.get("name")
                data = entry.get("data")
                if not (
                    isinstance(name, str)
                    and Path(name).name == name  # no traversal
                    and name.endswith(CHECKPOINT_SUFFIX)
                    and isinstance(data, str)
                ):
                    continue
                try:
                    raw = base64.b64decode(data, validate=True)
                except ValueError:
                    continue
                ckpt_dir = self._cache_dir / "checkpoints"
                ckpt_dir.mkdir(parents=True, exist_ok=True)
                tmp = ckpt_dir / f".{name}.part"
                tmp.write_bytes(raw)
                os.replace(tmp, ckpt_dir / name)
                accepted += 1
        if accepted:
            self.metrics.increment("handoff_received", accepted)
        return protocol.ok(accepted=accepted)

    def _handle_drain(self) -> Dict[str, Any]:
        """Warm-replica handoff, then a graceful stop.

        Hot cache entries and incremental checkpoints ship to the shard
        that owns each key on the post-departure ring (the per-key ring
        successor), so the fleet's warm-hit rate survives the departure.
        """
        with self._lock:
            if self._draining:
                return protocol.ok(draining=True, handed_off=0, already=True)
            self._draining = True  # refuse new submits while handing off
        handed_off, failed = self._handoff_all()
        threading.Thread(
            target=self._shutdown,
            kwargs={"drain": True},
            name="service-drain",
            daemon=True,
        ).start()
        return protocol.ok(
            draining=True, handed_off=handed_off, handoff_failed=failed
        )

    def _handoff_all(self) -> Tuple[int, int]:
        """Ship hot state to post-departure owners; ``(sent, failed)``."""
        ring = self._ring
        if (
            ring is None
            or self._fleet is None
            or self._shard_id is None
            or len(ring) < 2
        ):
            return 0, 0
        reduced = ring.without(self._shard_id)
        batches: Dict[str, List[Dict[str, Any]]] = {}
        for key in self.cache.keys_hot_first()[:HANDOFF_MAX_ENTRIES]:
            payload = self.cache.peek(key)
            if payload is None:
                continue
            batches.setdefault(reduced.owner(key), []).append(
                {"kind": "result", "key": key, "payload": payload}
            )
        from ..trace.checkpoint import CHECKPOINT_SUFFIX

        ckpt_dir = self._cache_dir / "checkpoints"
        if ckpt_dir.is_dir():
            for path in sorted(ckpt_dir.iterdir()):
                if not path.name.endswith(CHECKPOINT_SUFFIX):
                    continue
                data = base64.b64encode(path.read_bytes()).decode("ascii")
                batches.setdefault(reduced.owner(path.name), []).append(
                    {"kind": "checkpoint", "name": path.name, "data": data}
                )
        sent = failed = 0
        for owner, entries in batches.items():
            peer = self._peer(owner)
            for start in range(0, len(entries), HANDOFF_BATCH):
                group = entries[start : start + HANDOFF_BATCH]
                try:
                    peer.request(
                        {"op": "handoff", "entries": group}, timeout_s=30.0
                    )
                    sent += len(group)
                except ServiceError:
                    failed += len(entries) - start
                    break
        if sent:
            self.metrics.increment("handoff_sent", sent)
        return sent, failed

    def _replicate(self, key: str, payload: Dict[str, Any]) -> None:
        """Push a locally-computed result to the shard that owns its key.

        Happens when a workload's digest was unknown at submit time (no
        routing possible); replication makes the *next* submit of the
        same question a warm hit on whichever shard the router picks.
        """
        ring = self._ring
        if ring is None or self._shard_id is None or len(ring) < 2:
            return
        owner = ring.owner(key)
        if owner == self._shard_id:
            return
        try:
            self._peer(owner).request(
                {
                    "op": "handoff",
                    "entries": [{"kind": "result", "key": key, "payload": payload}],
                },
                timeout_s=10.0,
            )
            self.metrics.increment("replicated")
        except ServiceError:
            self.metrics.increment("replicate_failed")

    # ------------------------------------------------------------------ #
    # Other ops                                                          #
    # ------------------------------------------------------------------ #

    def _find_job(self, request: Dict[str, Any]) -> Union[Job, Dict[str, Any]]:
        job_id = request.get("id")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return protocol.error(protocol.ERR_NO_SUCH_JOB, f"no job {job_id!r}")
        return job

    def _handle_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(request)
        if isinstance(job, dict):
            return job
        return protocol.ok(**job.status_payload())

    def _handle_wait(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(request)
        if isinstance(job, dict):
            return job
        timeout_s = request.get("timeout_s")
        finished = job.done.wait(timeout=timeout_s)
        if not finished:
            return protocol.error(
                protocol.ERR_TIMEOUT, f"{job.id} still {job.state} after {timeout_s}s"
            )
        return protocol.ok(**job.status_payload())

    def _handle_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(request)
        if isinstance(job, dict):
            return job
        if job.state != "done":
            job.cancel_event.set()
        return protocol.ok(id=job.id, state=job.state, cancelling=job.state != "done")

    def _handle_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        mode = request.get("mode", "drain")
        if mode not in ("drain", "now"):
            return protocol.error(
                protocol.ERR_BAD_REQUEST, f"unknown shutdown mode {mode!r}"
            )
        thread = threading.Thread(
            target=self._shutdown,
            kwargs={"drain": mode == "drain"},
            name="service-shutdown",
            daemon=True,
        )
        thread.start()
        return protocol.ok(draining=mode == "drain", stopping=True)

    def stats(self) -> Dict[str, Any]:
        """The stats endpoint: metrics snapshot + live gauges."""
        snapshot = self.metrics.snapshot()
        with self._lock:
            snapshot["queue_depth"] = self._pool.queue_depth()
            snapshot["running"] = self._pool.running()
            snapshot["workers"] = self._workers
            snapshot["jobs_tracked"] = len(self._jobs)
            snapshot["draining"] = self._draining
            ring = self._ring
        snapshot["cache"] = self.cache.stats()
        snapshot["uploads"] = {"count": len(self.uploads.digests())}
        if self._shard_id is not None:
            snapshot["shard"] = self._shard_id
        if ring is not None:
            snapshot["fleet"] = {
                "shards": list(ring.shard_ids),
                "vnodes": ring.vnodes,
            }
        return snapshot

    # ------------------------------------------------------------------ #
    # Worker-pool callbacks                                              #
    # ------------------------------------------------------------------ #

    def _job_started(self, job: Job) -> None:
        job.started_at = time.perf_counter()
        job.state = "running"
        self.metrics.observe("queue_wait", job.started_at - job.submitted_at)

    def _job_done(self, job: Job, attempt: Attempt, attempts: int) -> None:
        job.finished_at = time.perf_counter()
        job.state = "done"
        job.attempts = attempts
        if attempts > 1:
            self.metrics.increment("retries", attempts - 1)

        if attempt.kind == "ok":
            job.outcome = "ok"
            job.result = attempt.payload
            self._record_success(job, attempt.payload)
        elif attempt.kind == "error":
            job.outcome = "error"
            job.error = attempt.payload
        elif attempt.kind == "timeout":
            job.outcome = "timeout"
            job.error = {
                "code": protocol.ERR_TIMEOUT,
                "message": f"job exceeded its {job.spec.timeout_s or 'default'} "
                f"second budget",
            }
        elif attempt.kind == "crashed":
            job.outcome = "crashed"
            job.error = {
                "code": protocol.ERR_CRASHED,
                "message": f"worker process died (exit code {attempt.exitcode}) "
                f"on both attempts",
            }
        else:  # cancelled
            job.outcome = "cancelled"
            job.error = {
                "code": protocol.ERR_CANCELLED,
                "message": "job was cancelled",
            }

        self.metrics.outcome(job.outcome)
        self.metrics.observe("total", job.finished_at - job.submitted_at)
        timings = (attempt.payload or {}).get("timings", {})
        if "resolve_s" in timings:
            self.metrics.observe("resolve", timings["resolve_s"])
        if "slice_s" in timings:
            self.metrics.observe("slice", timings["slice_s"])

        with self._lock:
            if self._inflight.get(job.fingerprint) == job.id:
                del self._inflight[job.fingerprint]
        job.done.set()

    def _record_success(self, job: Job, payload: Dict[str, Any]) -> None:
        """Write-through to the content-addressed cache and digest memo."""
        if job.spec.fault is not None:
            return  # fault-injected runs must never poison the cache
        digest = payload.get("trace_digest")
        if not digest:
            return
        key = cache_key(digest, job.spec.criteria, job.spec.engine, job.spec.frame)
        self.cache.put(key, payload)
        if job.spec.workload is not None:
            self.memo.put(job.spec.workload, digest)
        self._replicate(key, payload)
