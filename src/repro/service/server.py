"""The profiling daemon: socket front end, job registry, cache glue.

One :class:`ProfilingServer` owns

* a Unix-domain listener speaking the length-prefixed JSON protocol,
  one handler thread per connection;
* a bounded job queue drained by the supervised
  :class:`~repro.service.worker.WorkerPool` — a full queue rejects the
  submit with an explicit ``busy`` error rather than blocking the
  client (backpressure is a response, not a hang);
* the content-addressed :class:`~repro.service.cache.ResultCache` plus
  the workload→digest memo, probed at submit time so a warm submit
  completes in the connection handler without ever touching the queue;
* an in-flight fingerprint map that coalesces concurrent submits of the
  identical job onto one execution;
* :class:`~repro.service.metrics.ServiceMetrics` behind the ``stats``
  endpoint.

Shutdown is graceful by default: a ``shutdown`` request flips the server
into draining mode (new submits are refused with ``shutting-down``),
running and queued jobs finish, and only then does the listener close.
``mode="now"`` additionally cancels queued and running jobs first.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..trace.store import file_digest
from . import protocol
from .cache import ResultCache, WorkloadDigestMemo, cache_key
from .jobs import JobSpec, SpecError
from .metrics import ServiceMetrics
from .worker import Attempt, WorkerPool


@dataclass
class Job:
    """Server-side state of one submitted job."""

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = "queued"  # queued | running | done
    outcome: Optional[str] = None  # see metrics.OUTCOMES
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cache_tier: Optional[str] = None  # memory | disk, for cache outcomes
    attempts: int = 0
    coalesced_submits: int = 0
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)

    def status_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "coalesced_submits": self.coalesced_submits,
            "cache": self.cache_tier,
            "spec": self.spec.to_dict(),
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        if self.started_at is not None:
            payload["queue_wait_s"] = self.started_at - self.submitted_at
        if self.finished_at is not None and self.started_at is not None:
            payload["run_s"] = self.finished_at - self.started_at
        return payload


class ProfilingServer:
    """Long-running profiling daemon on a local Unix socket."""

    def __init__(
        self,
        socket_path: Union[str, Path],
        cache_dir: Union[str, Path],
        workers: int = 2,
        queue_size: int = 16,
        default_timeout_s: float = 300.0,
        memory_cache_entries: int = 128,
    ) -> None:
        self._socket_path = str(socket_path)
        self._cache_dir = Path(cache_dir)
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self._cache_dir, memory_cache_entries)
        self.memo = WorkloadDigestMemo(self._cache_dir)
        self.metrics = ServiceMetrics()
        self._pool = WorkerPool(
            workers,
            queue_size,
            on_start=self._job_started,
            on_done=self._job_done,
            default_timeout_s=default_timeout_s,
        )
        self._workers = workers
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # fingerprint -> job id
        self._next_id = 0
        self._lock = threading.Lock()
        self._draining = False
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Bind the socket and start the pool + accept thread."""
        if os.path.exists(self._socket_path):
            os.unlink(self._socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self._socket_path)
        listener.listen(64)
        self._listener = listener
        self._pool.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Block until a shutdown request (or :meth:`close`) completes."""
        self._closed.wait()

    def close(self) -> None:
        """Immediate local shutdown (tests / ``finally`` blocks)."""
        self._shutdown(drain=False)

    @property
    def socket_path(self) -> str:
        return self._socket_path

    def _shutdown(self, drain: bool) -> None:
        with self._lock:
            if self._closed.is_set():
                return
            self._draining = True
        if not drain:
            for job in list(self._jobs.values()):
                job.cancel_event.set()
        while not self._pool.idle():
            time.sleep(0.02)
        self._pool.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        if os.path.exists(self._socket_path):
            try:
                os.unlink(self._socket_path)
            except OSError:  # pragma: no cover
                pass
        self._closed.set()

    # ------------------------------------------------------------------ #
    # Connection handling                                                #
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = protocol.recv_message(conn)
                except protocol.ProtocolError as err:
                    protocol.send_message(
                        conn, protocol.error(protocol.ERR_BAD_REQUEST, str(err))
                    )
                    return
                if request is None:
                    return
                try:
                    response = self._dispatch(request)
                except Exception as err:  # noqa: BLE001 — handler boundary
                    response = protocol.error(
                        protocol.ERR_INTERNAL, f"{type(err).__name__}: {err}"
                    )
                protocol.send_message(conn, response)
        except OSError:
            pass  # client went away; nothing to clean up
        finally:
            conn.close()

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return protocol.ok(pong=True)
        if op == "submit":
            return self._handle_submit(request)
        if op == "status":
            return self._handle_status(request)
        if op == "wait":
            return self._handle_wait(request)
        if op == "cancel":
            return self._handle_cancel(request)
        if op == "stats":
            return protocol.ok(stats=self.stats())
        if op == "shutdown":
            return self._handle_shutdown(request)
        return protocol.error(protocol.ERR_BAD_REQUEST, f"unknown op {op!r}")

    # ------------------------------------------------------------------ #
    # Submit path                                                        #
    # ------------------------------------------------------------------ #

    def _probe_digest(self, spec: JobSpec) -> Optional[str]:
        """The job's trace digest, when knowable without running it."""
        if spec.trace_path is not None:
            try:
                return file_digest(spec.trace_path)
            except OSError:
                return None  # surfaced as a job error by the worker
        assert spec.workload is not None
        return self.memo.get(spec.workload)

    def _handle_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            spec = JobSpec.from_dict(request.get("spec") or {})
        except (SpecError, TypeError) as err:
            self.metrics.increment("invalid_specs")
            return protocol.error(protocol.ERR_INVALID_SPEC, str(err))
        if spec.engine == "incremental" and spec.checkpoint_dir is None:
            # frames-incremental path: successive frame submits of one
            # trace digest share a persisted checkpoint under the cache
            # dir, so each pays only the per-frame delta.
            spec = replace(
                spec, checkpoint_dir=str(self._cache_dir / "checkpoints")
            )
        wait = bool(request.get("wait", False))
        self.metrics.increment("submits")

        fingerprint = spec.fingerprint()
        coalesced = False
        with self._lock:
            if self._draining:
                return protocol.error(
                    protocol.ERR_SHUTTING_DOWN, "server is draining"
                )
            # Coalesce onto an in-flight identical job.
            existing_id = self._inflight.get(fingerprint)
            if existing_id is not None:
                job = self._jobs[existing_id]
                job.coalesced_submits += 1
                self.metrics.increment("coalesced")
                coalesced = True
            else:
                job = self._admit_job(spec, fingerprint)
                if isinstance(job, dict):
                    return job  # busy rejection
        # The wait (if any) happens outside the lock: _job_done needs the
        # lock to retire the in-flight entry before it sets job.done.
        return self._submit_response(job, wait, coalesced=coalesced)

    def _admit_job(
        self, spec: JobSpec, fingerprint: str
    ) -> Union[Job, Dict[str, Any]]:
        """Cache-probe then enqueue one new job; caller holds the lock."""
        # Content-addressed fast path: a known digest whose result is
        # already cached never touches the queue.
        if spec.fault is None:
            digest = self._probe_digest(spec)
            if digest is not None:
                key = cache_key(digest, spec.criteria, spec.engine, spec.frame)
                found = self.cache.lookup(key)
                if found is not None:
                    payload, tier = found
                    job = self._new_job(spec, fingerprint)
                    job.state = "done"
                    job.outcome = f"cache-{tier}"
                    job.cache_tier = tier
                    job.result = payload
                    job.started_at = job.submitted_at
                    job.finished_at = time.perf_counter()
                    job.done.set()
                    self.metrics.outcome(f"cache-{tier}")
                    self.metrics.observe("total", 0.0)
                    return job

        job = self._new_job(spec, fingerprint)
        self._inflight[fingerprint] = job.id
        try:
            self._pool.submit_nowait(job)
        except queue.Full:
            del self._jobs[job.id]
            del self._inflight[fingerprint]
            self.metrics.increment("busy_rejected")
            return protocol.error(
                protocol.ERR_BUSY,
                f"job queue is full ({self._pool.queue_depth()} queued)",
            )
        return job

    def _new_job(self, spec: JobSpec, fingerprint: str) -> Job:
        self._next_id += 1
        job = Job(id=f"job-{self._next_id}", spec=spec, fingerprint=fingerprint)
        self._jobs[job.id] = job
        return job

    def _submit_response(
        self, job: Job, wait: bool, coalesced: bool = False
    ) -> Dict[str, Any]:
        if wait:
            job.done.wait()
        return protocol.ok(coalesced=coalesced, **job.status_payload())

    # ------------------------------------------------------------------ #
    # Other ops                                                          #
    # ------------------------------------------------------------------ #

    def _find_job(self, request: Dict[str, Any]) -> Union[Job, Dict[str, Any]]:
        job_id = request.get("id")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return protocol.error(protocol.ERR_NO_SUCH_JOB, f"no job {job_id!r}")
        return job

    def _handle_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(request)
        if isinstance(job, dict):
            return job
        return protocol.ok(**job.status_payload())

    def _handle_wait(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(request)
        if isinstance(job, dict):
            return job
        timeout_s = request.get("timeout_s")
        finished = job.done.wait(timeout=timeout_s)
        if not finished:
            return protocol.error(
                protocol.ERR_TIMEOUT, f"{job.id} still {job.state} after {timeout_s}s"
            )
        return protocol.ok(**job.status_payload())

    def _handle_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(request)
        if isinstance(job, dict):
            return job
        if job.state != "done":
            job.cancel_event.set()
        return protocol.ok(id=job.id, state=job.state, cancelling=job.state != "done")

    def _handle_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        mode = request.get("mode", "drain")
        if mode not in ("drain", "now"):
            return protocol.error(
                protocol.ERR_BAD_REQUEST, f"unknown shutdown mode {mode!r}"
            )
        thread = threading.Thread(
            target=self._shutdown,
            kwargs={"drain": mode == "drain"},
            name="service-shutdown",
            daemon=True,
        )
        thread.start()
        return protocol.ok(draining=mode == "drain", stopping=True)

    def stats(self) -> Dict[str, Any]:
        """The stats endpoint: metrics snapshot + live gauges."""
        snapshot = self.metrics.snapshot()
        with self._lock:
            snapshot["queue_depth"] = self._pool.queue_depth()
            snapshot["running"] = self._pool.running()
            snapshot["workers"] = self._workers
            snapshot["jobs_tracked"] = len(self._jobs)
            snapshot["draining"] = self._draining
        snapshot["cache"] = self.cache.stats()
        return snapshot

    # ------------------------------------------------------------------ #
    # Worker-pool callbacks                                              #
    # ------------------------------------------------------------------ #

    def _job_started(self, job: Job) -> None:
        job.started_at = time.perf_counter()
        job.state = "running"
        self.metrics.observe("queue_wait", job.started_at - job.submitted_at)

    def _job_done(self, job: Job, attempt: Attempt, attempts: int) -> None:
        job.finished_at = time.perf_counter()
        job.state = "done"
        job.attempts = attempts
        if attempts > 1:
            self.metrics.increment("retries", attempts - 1)

        if attempt.kind == "ok":
            job.outcome = "ok"
            job.result = attempt.payload
            self._record_success(job, attempt.payload)
        elif attempt.kind == "error":
            job.outcome = "error"
            job.error = attempt.payload
        elif attempt.kind == "timeout":
            job.outcome = "timeout"
            job.error = {
                "code": protocol.ERR_TIMEOUT,
                "message": f"job exceeded its {job.spec.timeout_s or 'default'} "
                f"second budget",
            }
        elif attempt.kind == "crashed":
            job.outcome = "crashed"
            job.error = {
                "code": protocol.ERR_CRASHED,
                "message": f"worker process died (exit code {attempt.exitcode}) "
                f"on both attempts",
            }
        else:  # cancelled
            job.outcome = "cancelled"
            job.error = {
                "code": protocol.ERR_CANCELLED,
                "message": "job was cancelled",
            }

        self.metrics.outcome(job.outcome)
        self.metrics.observe("total", job.finished_at - job.submitted_at)
        timings = (attempt.payload or {}).get("timings", {})
        if "resolve_s" in timings:
            self.metrics.observe("resolve", timings["resolve_s"])
        if "slice_s" in timings:
            self.metrics.observe("slice", timings["slice_s"])

        with self._lock:
            if self._inflight.get(job.fingerprint) == job.id:
                del self._inflight[job.fingerprint]
        job.done.set()

    def _record_success(self, job: Job, payload: Dict[str, Any]) -> None:
        """Write-through to the content-addressed cache and digest memo."""
        if job.spec.fault is not None:
            return  # fault-injected runs must never poison the cache
        digest = payload.get("trace_digest")
        if not digest:
            return
        key = cache_key(digest, job.spec.criteria, job.spec.engine, job.spec.frame)
        self.cache.put(key, payload)
        if job.spec.workload is not None:
            self.memo.put(job.spec.workload, digest)
