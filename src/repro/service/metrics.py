"""Service observability: outcome counters and per-stage latency.

Every job contributes one sample per stage (queue wait, trace resolve,
slice, total) and exactly one terminal outcome.  The ``stats`` endpoint
renders this as JSON; nothing here depends on the server, so the module
is unit-testable in isolation.

Snapshots are safe under concurrent :meth:`ServiceMetrics.observe`: the
lock is held only long enough to *copy* the sample windows, and the
percentile sort runs on the copies outside the lock — a stats request
over a 4096-sample window never stalls the submit path, and an observe
landing mid-snapshot can never mutate the list being sorted.

Fleet deployments label each shard's metrics (``labels={"shard": ...}``)
so the aggregated ``stats`` of an N-shard fleet stays attributable;
:func:`merge_snapshots` is the aggregation recipe the fleet client and
load harness share.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

#: Latency samples kept per stage; a rolling window so a long-lived
#: daemon reports recent behaviour, not its whole history.
WINDOW = 4096

#: Percentiles the stats endpoint reports.
PERCENTILES = (50, 90, 99)

#: Terminal job outcomes (every submitted job ends in exactly one).
OUTCOMES = (
    "ok",
    "cache-memory",
    "cache-disk",
    "error",
    "timeout",
    "crashed",
    "cancelled",
)


def percentile(samples: Iterable[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]) of a non-empty sample set."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class _Stage:
    __slots__ = ("samples", "count", "total")

    def __init__(self) -> None:
        self.samples: Deque[float] = deque(maxlen=WINDOW)
        self.count = 0
        self.total = 0.0

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.count += 1
        self.total += seconds


def _stage_summary(window: List[float], count: int, total: float) -> Dict[str, Any]:
    """Render one stage's summary from an already-copied window."""
    if not window:
        return {"count": count}
    summary: Dict[str, Any] = {"count": count, "mean_s": total / count}
    for p in PERCENTILES:
        summary[f"p{p}_s"] = percentile(window, p)
    return summary


class ServiceMetrics:
    """Thread-safe counters + latency histograms behind one lock.

    The lock guards only mutation and copying; percentile computation
    happens on copies so ``snapshot()`` never blocks ``observe()`` for
    the duration of a sort.
    """

    def __init__(self, labels: Optional[Mapping[str, str]] = None) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, _Stage] = {}
        self._counters: Dict[str, int] = {}
        self._outcomes: Dict[str, int] = {}
        self._labels = dict(labels or {})
        self._started = time.monotonic()

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self._labels)

    def set_label(self, key: str, value: str) -> None:
        """Attach/overwrite one label (e.g. when a server joins a fleet)."""
        with self._lock:
            self._labels[key] = value

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._stages.setdefault(stage, _Stage()).add(seconds)

    def increment(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def outcome(self, outcome: str) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def outcome_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._outcomes)

    def snapshot(self) -> Dict[str, Any]:
        """The stats endpoint's payload (sans server-owned gauges)."""
        with self._lock:
            uptime = time.monotonic() - self._started
            counters = dict(self._counters)
            outcomes = {name: self._outcomes.get(name, 0) for name in OUTCOMES}
            stages: List[Tuple[str, List[float], int, float]] = [
                (name, list(stage.samples), stage.count, stage.total)
                for name, stage in sorted(self._stages.items())
            ]
        # Percentile sorts happen outside the lock, on the copies.
        payload: Dict[str, Any] = {
            "uptime_s": uptime,
            "counters": counters,
            "outcomes": outcomes,
            "latency": {
                name: _stage_summary(window, count, total)
                for name, window, count, total in stages
            },
        }
        if self._labels:
            payload["labels"] = dict(self._labels)
        return payload


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-shard metric snapshots into one fleet view.

    Counters and outcomes sum.  Latency stages merge by summing counts
    and count-weighting means; percentiles cannot be re-derived from
    percentiles, so the merged ``pNN_s`` is the *max* across shards — a
    conservative upper bound (a budget that holds on the aggregate holds
    on every shard).  Each input's ``labels`` are preserved under
    ``shards`` so the aggregate stays attributable.
    """
    merged_counters: Dict[str, int] = {}
    merged_outcomes: Dict[str, int] = {name: 0 for name in OUTCOMES}
    stage_counts: Dict[str, int] = {}
    stage_mean_weighted: Dict[str, float] = {}
    stage_percentiles: Dict[str, Dict[str, float]] = {}
    shard_labels: List[Dict[str, str]] = []
    uptime = 0.0
    n = 0
    for snap in snapshots:
        n += 1
        uptime = max(uptime, float(snap.get("uptime_s", 0.0)))
        shard_labels.append(dict(snap.get("labels", {})))
        for name, value in (snap.get("counters") or {}).items():
            merged_counters[name] = merged_counters.get(name, 0) + int(value)
        for name, value in (snap.get("outcomes") or {}).items():
            merged_outcomes[name] = merged_outcomes.get(name, 0) + int(value)
        for stage, summary in (snap.get("latency") or {}).items():
            count = int(summary.get("count", 0))
            stage_counts[stage] = stage_counts.get(stage, 0) + count
            if "mean_s" in summary:
                stage_mean_weighted[stage] = (
                    stage_mean_weighted.get(stage, 0.0)
                    + float(summary["mean_s"]) * count
                )
            bucket = stage_percentiles.setdefault(stage, {})
            for p in PERCENTILES:
                field = f"p{p}_s"
                if field in summary:
                    bucket[field] = max(
                        bucket.get(field, 0.0), float(summary[field])
                    )
    latency: Dict[str, Any] = {}
    for stage, count in stage_counts.items():
        summary: Dict[str, Any] = {"count": count}
        if stage in stage_mean_weighted and count:
            summary["mean_s"] = stage_mean_weighted[stage] / count
        summary.update(stage_percentiles.get(stage, {}))
        latency[stage] = summary
    return {
        "shards_merged": n,
        "uptime_s": uptime,
        "counters": merged_counters,
        "outcomes": merged_outcomes,
        "latency": latency,
        "shards": shard_labels,
    }
