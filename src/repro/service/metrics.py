"""Service observability: outcome counters and per-stage latency.

Every job contributes one sample per stage (queue wait, trace resolve,
slice, total) and exactly one terminal outcome.  The ``stats`` endpoint
renders this as JSON; nothing here depends on the server, so the module
is unit-testable in isolation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable

#: Latency samples kept per stage; a rolling window so a long-lived
#: daemon reports recent behaviour, not its whole history.
WINDOW = 4096

#: Percentiles the stats endpoint reports.
PERCENTILES = (50, 90, 99)

#: Terminal job outcomes (every submitted job ends in exactly one).
OUTCOMES = (
    "ok",
    "cache-memory",
    "cache-disk",
    "error",
    "timeout",
    "crashed",
    "cancelled",
)


def percentile(samples: Iterable[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]) of a non-empty sample set."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class _Stage:
    __slots__ = ("samples", "count", "total")

    def __init__(self) -> None:
        self.samples: Deque[float] = deque(maxlen=WINDOW)
        self.count = 0
        self.total = 0.0

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.count += 1
        self.total += seconds

    def snapshot(self) -> Dict[str, Any]:
        if not self.samples:
            return {"count": self.count}
        window = list(self.samples)
        summary: Dict[str, Any] = {
            "count": self.count,
            "mean_s": self.total / self.count,
        }
        for p in PERCENTILES:
            summary[f"p{p}_s"] = percentile(window, p)
        return summary


class ServiceMetrics:
    """Thread-safe counters + latency histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, _Stage] = {}
        self._counters: Dict[str, int] = {}
        self._outcomes: Dict[str, int] = {}
        self._started = time.monotonic()

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._stages.setdefault(stage, _Stage()).add(seconds)

    def increment(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def outcome(self, outcome: str) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def outcome_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._outcomes)

    def snapshot(self) -> Dict[str, Any]:
        """The stats endpoint's payload (sans server-owned gauges)."""
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self._started,
                "counters": dict(self._counters),
                "outcomes": {name: self._outcomes.get(name, 0) for name in OUTCOMES},
                "latency": {
                    stage: s.snapshot() for stage, s in sorted(self._stages.items())
                },
            }
