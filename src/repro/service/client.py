"""Client library for the profiling daemon.

:class:`ServiceClient` opens one short-lived connection per call — the
daemon is local, connects are cheap, and per-call connections mean a
client never holds a handler thread hostage between requests (the one
deliberate exception: ``submit(wait=True)`` and ``wait()`` keep their
connection open while the server blocks on the job's completion).

Failures arrive as :class:`ServiceError` with the server's stable error
code on it, so callers branch on ``err.code`` rather than message text.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Union

from .jobs import JobSpec
from .protocol import ProtocolError, recv_message, send_message


class ServiceError(Exception):
    """An error response from the daemon (or a transport failure)."""

    def __init__(self, code: str, message: str, details: Optional[Dict] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ProfilingServer` socket."""

    def __init__(self, socket_path: str, connect_timeout_s: float = 5.0) -> None:
        self._socket_path = socket_path
        self._connect_timeout_s = connect_timeout_s

    def request(
        self, message: Dict[str, Any], timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """One round trip; raises :class:`ServiceError` on ``ok: false``.

        ``timeout_s`` bounds the wait for the *response* (None = forever),
        independent of the connect timeout.
        """
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(self._connect_timeout_s)
            try:
                sock.connect(self._socket_path)
            except OSError as err:
                raise ServiceError(
                    "unreachable", f"cannot connect to {self._socket_path}: {err}"
                ) from None
            sock.settimeout(timeout_s)
            try:
                send_message(sock, message)
                response = recv_message(sock)
            except (ProtocolError, OSError) as err:
                raise ServiceError("transport", str(err)) from None
            if response is None:
                raise ServiceError("transport", "server closed the connection")
            if not response.get("ok"):
                error = response.get("error") or {}
                raise ServiceError(
                    error.get("code", "unknown"),
                    error.get("message", "unspecified error"),
                    details=error,
                )
            return response
        finally:
            sock.close()

    # -- operations ----------------------------------------------------- #

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        wait: bool = False,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a job; with ``wait=True`` block until it completes."""
        spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else spec
        return self.request(
            {"op": "submit", "spec": spec_dict, "wait": wait}, timeout_s=timeout_s
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "status", "id": job_id})

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block (server-side) until the job completes, then its status."""
        request: Dict[str, Any] = {"op": "wait", "id": job_id}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        # Give the transport slack beyond the server-side wait budget.
        transport = None if timeout_s is None else timeout_s + 5.0
        return self.request(request, timeout_s=transport)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "id": job_id})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request({"op": "shutdown", "mode": "drain" if drain else "now"})
