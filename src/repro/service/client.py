"""Client library for the profiling daemon.

:class:`ServiceClient` opens one short-lived connection per call — the
daemon is local, connects are cheap, and per-call connections mean a
client never holds a handler thread hostage between requests (the
deliberate exceptions: ``submit(wait=True)`` and ``wait()`` keep their
connection open while the server blocks on the job's completion, and
``upload_trace`` streams all of its chunk frames over one connection).

Endpoints name either transport::

    ServiceClient("/tmp/repro.sock")            # AF_UNIX (back-compat)
    ServiceClient("unix:/tmp/repro.sock")       # AF_UNIX, explicit
    ServiceClient("tcp:127.0.0.1:7341")         # TCP

TCP servers configured with a shared secret require an ``auth`` frame
before any other op; pass ``auth_token`` and the client performs the
handshake transparently on every connection it opens.  AF_UNIX servers
trust filesystem permissions instead and skip the handshake.

Failures arrive as :class:`ServiceError` with the server's stable error
code on it, so callers branch on ``err.code`` rather than message text.
"""

from __future__ import annotations

import base64
import hashlib
import socket
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .jobs import JobSpec
from .protocol import ProtocolError, recv_message, send_message


def parse_endpoint(endpoint: str) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """Split an endpoint string into ``("unix", path)`` or ``("tcp", (host, port))``.

    A bare path (no scheme prefix) is an AF_UNIX socket, which keeps
    every pre-fleet call site working unchanged.
    """
    if endpoint.startswith("tcp:"):
        rest = endpoint[len("tcp:"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(f"tcp endpoint must be tcp:HOST:PORT, got {endpoint!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"bad port in endpoint {endpoint!r}") from None
        if not 0 < port < 65536:
            raise ValueError(f"port out of range in endpoint {endpoint!r}")
        return "tcp", (host, port)
    if endpoint.startswith("unix:"):
        return "unix", endpoint[len("unix:"):]
    return "unix", endpoint


class ServiceError(Exception):
    """An error response from the daemon (or a transport failure)."""

    def __init__(self, code: str, message: str, details: Optional[Dict] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class ServiceClient:
    """Talk to a :class:`~repro.service.server.ProfilingServer` socket."""

    def __init__(
        self,
        endpoint: str,
        connect_timeout_s: float = 5.0,
        auth_token: Optional[str] = None,
    ) -> None:
        self._kind, self._address = parse_endpoint(endpoint)
        self._endpoint = endpoint
        self._connect_timeout_s = connect_timeout_s
        self._auth_token = auth_token

    @property
    def endpoint(self) -> str:
        return self._endpoint

    def _open(self, timeout_s: Optional[float]) -> socket.socket:
        """Connect (and authenticate, on TCP) one fresh socket."""
        if self._kind == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._connect_timeout_s)
        try:
            sock.connect(self._address)
        except OSError as err:
            sock.close()
            raise ServiceError(
                "unreachable", f"cannot connect to {self._endpoint}: {err}"
            ) from None
        sock.settimeout(timeout_s)
        if self._kind == "tcp" and self._auth_token is not None:
            try:
                send_message(sock, {"op": "auth", "token": self._auth_token})
                response = recv_message(sock)
            except (ProtocolError, OSError) as err:
                sock.close()
                raise ServiceError("transport", str(err)) from None
            if response is None or not response.get("ok"):
                sock.close()
                error = (response or {}).get("error") or {}
                raise ServiceError(
                    error.get("code", "auth-failed"),
                    error.get("message", "authentication rejected"),
                    details=error,
                )
        return sock

    def request(
        self, message: Dict[str, Any], timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """One round trip; raises :class:`ServiceError` on ``ok: false``.

        ``timeout_s`` bounds the wait for the *response* (None = forever),
        independent of the connect timeout.
        """
        sock = self._open(timeout_s)
        try:
            try:
                send_message(sock, message)
                response = recv_message(sock)
            except (ProtocolError, OSError) as err:
                raise ServiceError("transport", str(err)) from None
            return self._check(response)
        finally:
            sock.close()

    @staticmethod
    def _check(response: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        if response is None:
            raise ServiceError("transport", "server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "unknown"),
                error.get("message", "unspecified error"),
                details=error,
            )
        return response

    # -- operations ----------------------------------------------------- #

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        wait: bool = False,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a job; with ``wait=True`` block until it completes."""
        spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else spec
        return self.request(
            {"op": "submit", "spec": spec_dict, "wait": wait}, timeout_s=timeout_s
        )

    def upload_trace(
        self,
        path: Union[str, Path],
        spec: Optional[Dict[str, Any]] = None,
        wait: bool = True,
        stream: bool = False,
        chunk_size: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Stream a trace file to the server in bounded-memory chunks.

        Reads the file ``chunk_size`` bytes at a time — the full image is
        never resident on this side — and ships ``trace-begin``, the
        ``trace-chunk`` frames (unacknowledged; see the protocol notes),
        and a ``trace-end`` carrying the running sha256.

        Without ``spec`` the server just registers the upload and the
        response carries its ``digest`` (submit later with a
        ``trace_ref`` spec).  With ``spec`` (criteria/engine/frame — no
        target; the upload *is* the target) the server submits the job
        immediately.  ``stream=True`` with ``engine="incremental"``
        instead slices every frame as its epoch arrives from the spooled
        stream and returns the per-frame results.
        """
        from .fleet.upload import CHUNK_SIZE_DEFAULT, iter_file_chunks

        size = chunk_size if chunk_size is not None else CHUNK_SIZE_DEFAULT
        # Probe readability before dialing: an unreadable local file is
        # the caller's error (plain OSError), not a transport failure.
        Path(path).open("rb").close()
        sock = self._open(timeout_s)
        try:
            try:
                send_message(sock, {"op": "trace-begin"})
                self._check(recv_message(sock))
                hasher = hashlib.sha256()
                for chunk in iter_file_chunks(path, size):
                    hasher.update(chunk)
                    send_message(
                        sock,
                        {
                            "op": "trace-chunk",
                            "data": base64.b64encode(chunk).decode("ascii"),
                        },
                    )
                end: Dict[str, Any] = {
                    "op": "trace-end",
                    "digest": hasher.hexdigest(),
                    "wait": wait,
                }
                if spec is not None:
                    end["spec"] = spec
                if stream:
                    end["stream"] = True
                send_message(sock, end)
                return self._check(recv_message(sock))
            except (ProtocolError, OSError) as err:
                raise ServiceError("transport", str(err)) from None
        finally:
            sock.close()

    def has_trace(self, digest: str) -> bool:
        """Whether the server's upload registry holds ``digest``."""
        return bool(
            self.request({"op": "has-trace", "digest": digest}).get("present")
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "status", "id": job_id})

    def wait(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block (server-side) until the job completes, then its status."""
        request: Dict[str, Any] = {"op": "wait", "id": job_id}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        # Give the transport slack beyond the server-side wait budget.
        transport = None if timeout_s is None else timeout_s + 5.0
        return self.request(request, timeout_s=transport)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "id": job_id})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def ring(self) -> Dict[str, Any]:
        """The server's fleet topology (empty for a single node)."""
        return self.request({"op": "ring"})

    def drain(self) -> Dict[str, Any]:
        """Hand off warm entries to ring successors, then drain-stop."""
        return self.request({"op": "drain"})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request({"op": "shutdown", "mode": "drain" if drain else "now"})
