"""Proof-carrying waste eliminator.

Consumes the repo's two evidence streams — the jsstatic dead-function
call graph and the profiler's pixel-slice attribution — and rewrites a
workload's JS (plus its resource set) before execution.  Every transform
carries a :class:`~repro.optimize.transforms.Proof`: the safety category
(``PROVEN_SAFE`` from static analysis alone, ``DYNAMICALLY_SAFE`` when a
recorded trace discharges the obligation, ``UNSAFE`` for refusals), the
obligation itself, and the evidence source.  The verification harness
(:mod:`.verify`) then re-runs the transformed workload and asserts the
framebuffer digests are byte-identical, no dead-function trip-wire
fired, and trace records were actually removed.
"""

from .purity import (
    Purity,
    PurityAnalysis,
    PurityInfo,
    analyze_page_purity,
)
from .transforms import (
    ObservabilityIndex,
    OptimizationPlan,
    Proof,
    ProofCategory,
    Rewrite,
    ScriptPlan,
    build_observability,
    eliminate_discarded_calls,
    plan_deferrals,
    plan_image_elisions,
    plan_scripts,
    prune_constant_branches,
    stub_dead_functions,
)
from .report import plan_report, verification_report
from .verify import PassStats, VerificationResult, optimize_benchmark

__all__ = [
    "Purity",
    "PurityInfo",
    "PurityAnalysis",
    "analyze_page_purity",
    "ObservabilityIndex",
    "build_observability",
    "Proof",
    "ProofCategory",
    "Rewrite",
    "ScriptPlan",
    "OptimizationPlan",
    "eliminate_discarded_calls",
    "stub_dead_functions",
    "prune_constant_branches",
    "plan_deferrals",
    "plan_image_elisions",
    "plan_scripts",
    "PassStats",
    "VerificationResult",
    "optimize_benchmark",
    "plan_report",
    "verification_report",
]
