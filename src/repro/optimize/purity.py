"""Side-effect / escape analysis over the jsstatic call graph.

Every function (and every script top level) gets a :class:`PurityInfo`:
a headline verdict on the four-point lattice

    ``PURE < LOCAL_WRITE < DOM_WRITE < GLOBAL_ESCAPE``

plus the individual effect facets the lattice cannot express — a
function can write globals yet be DOM-free, which is exactly the case
the deferral pass needs to recognize (an analytics library mutates its
own session object but never paints).

Direct effects come from one syntactic pass over each region's body
(nested function bodies excluded: their effects only happen when *they*
run).  Effects then propagate interprocedurally along the call graph's
``DIRECT`` and ``CALLBACK`` edges — the two synchronous kinds — to a
fixpoint.  ``HANDLER``/``TIMER`` edges are *registrations*: running the
region schedules the callee for later, so the region records the
registration fact but does not absorb the callee's effects.  A call to a
name that resolves to no known function and no known builtin is an
``unknown call`` and poisons the verdict to ``GLOBAL_ESCAPE`` — the
analysis never guesses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..browser.js import ast
from ..jsstatic.callgraph import (
    CALLBACK_METHODS,
    CallGraph,
    EdgeKind,
    RegionKey,
    TIMER_FUNCTIONS,
    region_of,
)


class Purity(enum.IntEnum):
    """Headline effect verdict; higher values subsume lower ones."""

    PURE = 0
    LOCAL_WRITE = 1
    DOM_WRITE = 2
    GLOBAL_ESCAPE = 3


#: member stores that mutate the rendered document
_DOM_WRITE_PROPS = frozenset({"textContent", "innerHTML"})
#: element/document methods that mutate the rendered document
_DOM_MUTATOR_METHODS = frozenset({"setAttribute", "appendChild", "removeChild"})
#: methods whose effects the engine bounds: DOM reads, allocation, math,
#: string ops, and array ops (array mutators touch only their receiver,
#: which the receiver-locality check classifies separately)
_KNOWN_METHODS = frozenset(
    {
        "getElementById", "querySelector", "querySelectorAll",
        "getAttribute", "createElement", "createTextNode",
        "stringify", "keys", "now", "pow", "floor", "ceil", "abs",
        "max", "min", "round", "sqrt", "random",
        "indexOf", "slice", "charAt", "split", "toUpperCase",
        "toLowerCase", "replace", "substring", "join", "concat",
    }
    | CALLBACK_METHODS
)
#: array methods that write through their receiver
_RECEIVER_MUTATOR_METHODS = frozenset({"push", "pop"})
#: methods that perform IO (trace syscalls)
_IO_METHODS = frozenset({"log", "warn", "error", "sendBeacon"})
#: global functions the runtime installs (callable without a user binding)
_BUILTIN_GLOBALS = frozenset(
    {"parseInt", "parseFloat", "String", "Number", "__tripwire"}
    | TIMER_FUNCTIONS
)


@dataclass
class PurityInfo:
    """Effect summary for one region (function body or script top level)."""

    level: Purity = Purity.PURE
    local_write: bool = False
    dom_write: bool = False
    global_write: bool = False
    io: bool = False
    #: registration facts: "timer", "handler:<event type>" ("handler:?"
    #: when the event name is not a string literal)
    registers: Set[str] = field(default_factory=set)
    #: called names/methods the analysis could not resolve
    unknown_calls: Set[str] = field(default_factory=set)
    #: names of the global bindings written ("*" = a store through a
    #: base the analysis cannot name, e.g. ``a[i].p = v``)
    global_writes: Set[str] = field(default_factory=set)

    def join(self, other: "PurityInfo") -> bool:
        """Absorb ``other``'s effects; True if anything changed."""
        before = (
            self.local_write, self.dom_write, self.global_write, self.io,
            len(self.registers), len(self.unknown_calls),
            len(self.global_writes),
        )
        self.local_write |= other.local_write
        self.dom_write |= other.dom_write
        self.global_write |= other.global_write
        self.io |= other.io
        self.registers |= other.registers
        self.unknown_calls |= other.unknown_calls
        self.global_writes |= other.global_writes
        self._roll_up()
        return before != (
            self.local_write, self.dom_write, self.global_write, self.io,
            len(self.registers), len(self.unknown_calls),
            len(self.global_writes),
        )

    def _roll_up(self) -> None:
        if self.global_write or self.io or self.unknown_calls:
            self.level = Purity.GLOBAL_ESCAPE
        elif self.dom_write:
            self.level = Purity.DOM_WRITE
        elif self.local_write:
            self.level = Purity.LOCAL_WRITE
        else:
            self.level = Purity.PURE


class _EffectScanner:
    """One intraprocedural pass: direct effects of a region's body."""

    def __init__(self, info: PurityInfo, local_names: Set[str]) -> None:
        self.info = info
        self.locals = local_names
        #: locals only ever bound to fresh ``[]``/``{}`` allocations —
        #: the only locals whose member stores are provably frame-local
        #: (any other local may alias a shared object)
        self.fresh_locals: Set[str] = set()
        #: called global names, resolved interprocedurally later
        self.called_names: Set[str] = set()
        #: (name, call node) for identifier calls — lets the page-level
        #: pass consult value-flow call-site resolutions
        self.named_calls: List[Tuple[str, ast.Call]] = []
        #: (".prop", call node) for method calls with unmodeled receivers;
        #: unknown unless value flow resolved the site
        self.unknown_method_calls: List[Tuple[str, ast.Call]] = []

    def scan_body(self, body: List[ast.JSNode]) -> None:
        self.fresh_locals = _fresh_locals(body, self.locals)
        for stmt in body:
            self.scan(stmt)

    def scan(self, node: ast.JSNode) -> None:
        if isinstance(node, ast.FunctionExpr):
            return  # nested bodies run later; the call graph covers them
        if isinstance(node, ast.FunctionDecl):
            return
        if isinstance(node, ast.Assignment):
            self._scan_store(node.target)
            self.scan(node.value)
            if not isinstance(node.target, ast.Identifier):
                self.scan(node.target)
            return
        if isinstance(node, ast.UpdateExpr):
            self._scan_store(node.target)
            if not isinstance(node.target, ast.Identifier):
                self.scan(node.target)
            return
        if isinstance(node, ast.ForInStmt):
            # The loop variable is a var-scoped local of the region.
            self.locals.add(node.name)
            self.scan(node.obj)
            self.scan_body(node.body)
            return
        if isinstance(node, ast.Call):
            self._scan_call(node)
            return
        if isinstance(node, ast.SwitchStmt):
            self.scan(node.discriminant)
            for test, case_body in node.cases:
                if test is not None:
                    self.scan(test)
                self.scan_body(case_body)
            return
        for child in _children(node):
            self.scan(child)

    def _scan_store(self, target: ast.JSNode) -> None:
        if isinstance(target, ast.Identifier):
            if target.name in self.locals:
                self.info.local_write = True
            else:
                self.info.global_write = True
                self.info.global_writes.add(target.name)
            return
        if isinstance(target, ast.Member):
            if target.prop in _DOM_WRITE_PROPS:
                self.info.dom_write = True
                return
            if (
                isinstance(target.obj, ast.Member)
                and target.obj.prop == "style"
            ):
                self.info.dom_write = True
                return
            if (
                isinstance(target.obj, ast.Identifier)
                and target.obj.name in self.fresh_locals
            ):
                # Store into a frame-local allocation.
                self.info.local_write = True
                return
            # A heap store through a member: the receiver may be shared.
            self.info.global_write = True
            if (
                isinstance(target.obj, ast.Identifier)
                and target.obj.name not in self.locals
            ):
                self.info.global_writes.add(target.obj.name)
            else:
                self.info.global_writes.add("*")
            return
        self.info.global_write = True
        self.info.global_writes.add("*")

    def _scan_call(self, node: ast.Call) -> None:
        callee = node.callee
        if isinstance(callee, ast.Identifier):
            name = callee.name
            if name in TIMER_FUNCTIONS:
                self.info.registers.add("timer")
            elif name not in _BUILTIN_GLOBALS:
                self.called_names.add(name)
                self.named_calls.append((name, node))
        elif isinstance(callee, ast.Member):
            prop = callee.prop
            if prop == "addEventListener":
                event = "?"
                if node.args and isinstance(node.args[0], ast.Literal) and (
                    isinstance(node.args[0].value, str)
                ):
                    event = node.args[0].value
                self.info.registers.add(f"handler:{event}")
            elif prop in _DOM_MUTATOR_METHODS:
                self.info.dom_write = True
            elif prop in _IO_METHODS:
                self.info.io = True
            elif prop in _RECEIVER_MUTATOR_METHODS:
                if (
                    isinstance(callee.obj, ast.Identifier)
                    and callee.obj.name in self.fresh_locals
                ):
                    self.info.local_write = True
                else:
                    self.info.global_write = True
                    if (
                        isinstance(callee.obj, ast.Identifier)
                        and callee.obj.name not in self.locals
                    ):
                        self.info.global_writes.add(callee.obj.name)
                    else:
                        self.info.global_writes.add("*")
            elif prop in _KNOWN_METHODS:
                pass  # bounded effects
            elif prop is None:
                # Computed-member call: may invoke any stored function.
                # Unknown unless value flow resolved the site.
                self.unknown_method_calls.append((".<computed>", node))
            else:
                self.unknown_method_calls.append((f".{prop}", node))
            self.scan(callee.obj)
            if callee.index is not None:
                self.scan(callee.index)
        else:
            self.scan(callee)
        for arg in node.args:
            self.scan(arg)


def _children(node: ast.JSNode) -> List[ast.JSNode]:
    out: List[ast.JSNode] = []
    for name, value in vars(node).items():
        if name in ("span", "node_id"):
            continue
        if isinstance(value, ast.JSNode):
            out.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.JSNode):
                    out.append(item)
                elif isinstance(item, tuple):
                    out.extend(s for s in item if isinstance(s, ast.JSNode))
    return out


def _fresh_locals(body: List[ast.JSNode], local_names: Set[str]) -> Set[str]:
    """Locals whose every binding in ``body`` is a fresh ``[]``/``{}``.

    Parameters and for-in variables are never fresh (their values come
    from the caller / the iterated object), and one non-literal
    assignment disqualifies a name.
    """
    bound: Dict[str, bool] = {}

    def _note(name: str, value: ast.JSNode) -> None:
        fresh = isinstance(value, (ast.ArrayLiteral, ast.ObjectLiteral))
        bound[name] = bound.get(name, True) and fresh

    def _walk(node: ast.JSNode) -> None:
        if isinstance(node, ast.FunctionExpr):
            return
        if isinstance(node, ast.VarDecl):
            if node.init is not None:
                _note(node.name, node.init)
                _walk(node.init)
            else:
                bound.setdefault(node.name, True)
            return
        if isinstance(node, ast.ForInStmt):
            bound[node.name] = False
            _walk(node.obj)
            for stmt in node.body:
                _walk(stmt)
            return
        if isinstance(node, ast.Assignment) and isinstance(
            node.target, ast.Identifier
        ):
            _note(node.target.name, node.value)
            _walk(node.value)
            return
        for child in _children(node):
            _walk(child)

    for stmt in body:
        _walk(stmt)
    return {
        name for name, fresh in bound.items()
        if fresh and name in local_names
    }


def _declared_names(body: List[ast.JSNode], acc: Set[str]) -> None:
    """var/function names bound in a body (function-level scoping: the
    walk enters blocks/loops but not nested function bodies)."""
    for stmt in body:
        _collect_decls(stmt, acc)


def _collect_decls(node: ast.JSNode, acc: Set[str]) -> None:
    if isinstance(node, ast.FunctionExpr):
        return
    if isinstance(node, ast.VarDecl):
        acc.add(node.name)
        if node.init is not None:
            _collect_decls(node.init, acc)
        return
    if isinstance(node, ast.FunctionDecl):
        if node.func.name:
            acc.add(node.func.name)
        return
    if isinstance(node, ast.ForInStmt):
        acc.add(node.name)
    for child in _children(node):
        _collect_decls(child, acc)


@dataclass
class PurityAnalysis:
    """Fixpoint purity verdicts for every region of a page."""

    graph: CallGraph
    #: region key -> effect summary (direct + synchronous callees)
    regions: Dict[RegionKey, PurityInfo]
    #: region key -> regions it invokes synchronously (direct + callback)
    sync_callees: Dict[RegionKey, Set[RegionKey]] = field(default_factory=dict)

    def of_function(self, fid: int) -> PurityInfo:
        return self.regions[("fn", str(fid))]

    def of_script(self, url: str) -> PurityInfo:
        return self.regions[("top", url)]

    def load_effects(self, url: str) -> PurityInfo:
        """Everything executing ``url``'s top level can do synchronously."""
        return self.of_script(url)

    def sync_closure(self, roots: Set[RegionKey]) -> Set[RegionKey]:
        """``roots`` plus every region synchronously reachable from them."""
        seen: Set[RegionKey] = set(roots)
        work: List[RegionKey] = list(roots)
        while work:
            key = work.pop()
            for callee in self.sync_callees.get(key, ()):
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen


def analyze_page_purity(
    graph: CallGraph, programs: Dict[str, ast.Program]
) -> PurityAnalysis:
    """Purity fixpoint over a page: scripts' top levels + every function."""
    by_name: Dict[str, List[int]] = {}
    for info in graph.functions:
        for alias in info.aliases:
            by_name.setdefault(alias, []).append(info.fid)

    regions: Dict[RegionKey, PurityInfo] = {}
    sync_callees: Dict[RegionKey, Set[RegionKey]] = {}

    def _direct(
        key: RegionKey, params: List[str], body: List[ast.JSNode]
    ) -> None:
        local_names: Set[str] = set(params)
        _declared_names(body, local_names)
        info = PurityInfo()
        scanner = _EffectScanner(info, local_names)
        scanner.scan_body(body)
        callees: Set[RegionKey] = set()
        flow = graph.valueflow if (
            graph.valueflow is not None and graph.valueflow.ok
        ) else None

        def _resolved_site(call: ast.Call) -> "List[int] | None":
            """Value-flow target fids when the site is fully resolved."""
            if flow is None:
                return None
            site = flow.sites.get(call.node_id)
            if site is None or site.incomplete:
                return None
            return sorted(site.targets)

        for name, call in scanner.named_calls:
            targets = _resolved_site(call)
            if targets is not None:
                callees.update(("fn", str(fid)) for fid in targets)
                continue
            fids = by_name.get(name)
            if fids:
                callees.update(("fn", str(fid)) for fid in fids)
            else:
                info.unknown_calls.add(name)
        for label, call in scanner.unknown_method_calls:
            targets = _resolved_site(call)
            if targets is not None:
                callees.update(("fn", str(fid)) for fid in targets)
            else:
                info.unknown_calls.add(label)
        for kind, fid in graph.value_edges.get(key, ()):
            # VFLOW edges are resolved synchronous invocations from this
            # region — their effects belong in its summary just like a
            # direct call's (IIFEs and calls through data structures).
            if kind in (EdgeKind.DIRECT, EdgeKind.CALLBACK, EdgeKind.VFLOW):
                callees.add(("fn", str(fid)))
        for kind, name in graph.name_edges.get(key, ()):
            if kind == EdgeKind.CALLBACK:
                for fid in by_name.get(name, ()):
                    callees.add(("fn", str(fid)))
        info._roll_up()
        regions[key] = info
        sync_callees[key] = callees

    for fn in graph.functions:
        _direct(region_of(fn), list(fn.node.params), fn.node.body)
    for url, program in programs.items():
        _direct(("top", url), [], program.body)

    # Interprocedural fixpoint: absorb synchronous callees' effects.
    changed = True
    while changed:
        changed = False
        for key, callees in sync_callees.items():
            info = regions[key]
            for callee in callees:
                target = regions.get(callee)
                if target is not None and info.join(target):
                    changed = True
    return PurityAnalysis(
        graph=graph, regions=regions, sync_callees=sync_callees
    )
