"""Proof-carrying transform passes over a workload's scripts.

Five passes, in application order:

1. **discarded-call-elim** — remove a statement-level call whose result
   is discarded (or dead-stored) when the callee's *synchronous closure*
   is provably unobservable: DOM-free, IO-free, registration-free, no
   unknown calls, and every global it writes is only ever read back
   inside the closure itself — a closure that, per the call graph, no
   live region can invoke once the eliminated call sites are gone.  The
   page-wide :class:`ObservabilityIndex` supplies the read/write facts.
2. **dead-function-elim** — Muzeel-style body stubbing.  Every function
   the call-graph fixpoint proves unreachable (including functions that
   *became* unreachable after pass 1) gets its body replaced by a single
   ``__tripwire(fid)`` call.  The stub is the proof's *runtime check*:
   if the static verdict were wrong the trip-wire would fire during
   verification, which asserts zero hits.
3. **branch-prune** — fold ``if (<literal>)`` statements whose test the
   parser produced as a real constant (the parser's zero-width synthetic
   wrappers are never touched).  A branch containing a function
   declaration is *not* pruned — the rewrite is recorded as ``UNSAFE``
   and skipped, since a sibling reference to the declared name could
   observe the difference.
4. **defer-script** — pull a whole script out of the load phase.
   ``PROVEN_SAFE`` needs the purity analysis to show the script's
   synchronous load-time execution is DOM-free with no unknown calls, no
   timer registrations, no ``load``-event handlers, and no other script
   mentioning its bindings.  When other scripts *do* reference its
   bindings (but never from a region synchronously reachable at load),
   the deferral demotes to ``DYNAMICALLY_SAFE``, justified by the
   observed trace: no flagged record of the pixel slice touches the
   script's source-byte cells.
5. **elide-image** — drop an image resource whose fetched bytes no
   flagged pixel-slice record ever touches: the raster path reads an
   image's source cells whenever it paints into a drawn tile, so a
   zero-touch image was never rastered into any frame.  Purely dynamic
   evidence, hence always ``DYNAMICALLY_SAFE``.

Every applied (or refused) rewrite carries a :class:`Proof` naming its
category, the obligation discharged, and the evidence source.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..browser.js import ast
from ..browser.js.codegen import generate
from ..jsstatic.analyzer import PageAnalysis, analyze_page
from ..jsstatic.callgraph import EdgeKind, FunctionInfo, RegionKey
from ..jsstatic.valueflow import ValueFlowResult
from .purity import (
    PurityAnalysis,
    PurityInfo,
    _RECEIVER_MUTATOR_METHODS,
    _declared_names,
    analyze_page_purity,
)


class ProofCategory(enum.Enum):
    PROVEN_SAFE = "proven-safe"
    DYNAMICALLY_SAFE = "dynamically-safe"
    UNSAFE = "unsafe"


@dataclass
class Proof:
    """Why one rewrite preserves the rendered pixels."""

    category: ProofCategory
    #: the property that must hold for the rewrite to be sound
    obligation: str
    #: where the discharge came from, e.g. "jsstatic:callgraph"
    evidence: str


@dataclass
class Rewrite:
    """One transformation of one script or resource (applied or refused)."""

    #: "discarded-call-elim" | "dead-function-elim" | "branch-prune"
    #: | "defer-script" | "elide-image"
    pass_name: str
    script: str
    target: str
    span: Tuple[int, int]
    proof: Proof
    applied: bool = True


@dataclass
class ScriptPlan:
    """Per-script outcome of planning."""

    url: str
    original_source: str
    transformed_source: str
    deferred: bool = False
    rewrites: List[Rewrite] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.deferred or self.transformed_source != self.original_source


@dataclass
class OptimizationPlan:
    """Everything the optimizer decided for one workload."""

    benchmark: str
    scripts: Dict[str, ScriptPlan] = field(default_factory=dict)
    #: image-resource rewrites (elide-image pass)
    image_rewrites: List[Rewrite] = field(default_factory=list)
    analysis: Optional[PageAnalysis] = None
    purity: Optional[PurityAnalysis] = None

    @property
    def rewrites(self) -> List[Rewrite]:
        out: List[Rewrite] = []
        for plan in self.scripts.values():
            out.extend(plan.rewrites)
        out.extend(self.image_rewrites)
        return out

    def applied(self, pass_name: Optional[str] = None) -> List[Rewrite]:
        return [
            r for r in self.rewrites
            if r.applied and (pass_name is None or r.pass_name == pass_name)
        ]

    def refused(self) -> List[Rewrite]:
        return [r for r in self.rewrites if not r.applied]

    def replacements(self) -> Dict[str, str]:
        return {
            url: plan.transformed_source
            for url, plan in self.scripts.items()
            if plan.transformed_source != plan.original_source
        }

    def deferred_urls(self) -> List[str]:
        return [url for url, plan in self.scripts.items() if plan.deferred]

    def elided_images(self) -> List[str]:
        return [r.target for r in self.image_rewrites if r.applied]


# --------------------------------------------------------------------- #
# Page-wide observability index                                          #
# --------------------------------------------------------------------- #


@dataclass
class ObservabilityIndex:
    """Who reads / writes each global binding, by region.

    A *read* is an occurrence whose value can influence later execution:
    an expression use, a call argument, a callee, a member read.  Pure
    overwrite positions are recorded as *writes* only — the target of an
    assignment, the base of a member store (``G.p = v``), and the
    receiver of a ``push``/``pop`` whose call result is discarded all
    mutate the binding without observing it.
    """

    reads: Dict[str, Set[RegionKey]] = field(default_factory=dict)
    writes: Dict[str, Set[RegionKey]] = field(default_factory=dict)


_STMT_LIST_FIELDS = (
    "consequent", "alternate", "body", "block", "handler", "finally_body",
)


class _ObsWalker:
    """Scope-tracking walk classifying global occurrences."""

    def __init__(self, index: ObservabilityIndex, fid_of: Dict[int, int]) -> None:
        self.index = index
        self.fid_of = fid_of
        self.scopes: List[Set[str]] = []
        self.region: RegionKey = ("top", "")

    def _is_local(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _read(self, name: str) -> None:
        if not self._is_local(name):
            self.index.reads.setdefault(name, set()).add(self.region)

    def _write(self, name: str) -> None:
        if not self._is_local(name):
            self.index.writes.setdefault(name, set()).add(self.region)

    # -- statements ------------------------------------------------------ #

    def walk_program(self, url: str, program: ast.Program) -> None:
        self.region = ("top", url)
        self.scopes = []
        for stmt in program.body:
            self.stmt(stmt)

    def stmt(self, node: ast.JSNode) -> None:
        if isinstance(node, ast.ExpressionStmt):
            self.expr(node.expr, discarded=True)
            return
        if isinstance(node, ast.VarDecl):
            self._write(node.name)
            if node.init is not None:
                self.expr(node.init)
            return
        if isinstance(node, ast.FunctionDecl):
            self.function(node.func)
            return
        if isinstance(node, ast.ForInStmt):
            self._write(node.name)
            self.expr(node.obj)
            for stmt in node.body:
                self.stmt(stmt)
            return
        if isinstance(node, ast.ForStmt):
            if node.init is not None:
                if isinstance(node.init, ast.VarDecl):
                    self.stmt(node.init)
                else:
                    self.expr(node.init)
            if node.test is not None:
                self.expr(node.test)
            if node.update is not None:
                self.expr(node.update)
            for stmt in node.body:
                self.stmt(stmt)
            return
        if isinstance(node, ast.SwitchStmt):
            self.expr(node.discriminant)
            for test, case_body in node.cases:
                if test is not None:
                    self.expr(test)
                for stmt in case_body:
                    self.stmt(stmt)
            return
        for attr in _STMT_LIST_FIELDS:
            value = getattr(node, attr, None)
            if isinstance(value, list):
                for stmt in value:
                    if isinstance(stmt, ast.JSNode):
                        self.stmt(stmt)
        for name, value in vars(node).items():
            if name in ("span", "node_id"):
                continue
            if isinstance(value, ast.JSNode):
                self.expr(value)

    # -- expressions ----------------------------------------------------- #

    def expr(self, node: ast.JSNode, discarded: bool = False) -> None:
        if isinstance(node, ast.Identifier):
            self._read(node.name)
            return
        if isinstance(node, ast.Assignment):
            self._store_target(node.target)
            self.expr(node.value)
            return
        if isinstance(node, ast.UpdateExpr):
            self._store_target(node.target)
            return
        if isinstance(node, ast.Call):
            callee = node.callee
            if (
                discarded
                and not node.is_new
                and isinstance(callee, ast.Member)
                and callee.prop in _RECEIVER_MUTATOR_METHODS
                and isinstance(callee.obj, ast.Identifier)
            ):
                # receiver mutated, result dropped: a pure overwrite
                self._write(callee.obj.name)
                if callee.index is not None:
                    self.expr(callee.index)
            else:
                self.expr(callee)
            for arg in node.args:
                self.expr(arg)
            return
        if isinstance(node, ast.Member):
            self.expr(node.obj)
            if node.index is not None:
                self.expr(node.index)
            return
        if isinstance(node, ast.FunctionExpr):
            self.function(node)
            return
        for name, value in vars(node).items():
            if name in ("span", "node_id"):
                continue
            if isinstance(value, ast.JSNode):
                self.expr(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, ast.JSNode):
                        self.expr(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, ast.JSNode):
                                self.expr(sub)

    def _store_target(self, target: ast.JSNode) -> None:
        if isinstance(target, ast.Identifier):
            self._write(target.name)
            return
        if isinstance(target, ast.Member):
            if isinstance(target.obj, ast.Identifier):
                self._write(target.obj.name)
            else:
                self.expr(target.obj)
            if target.index is not None:
                self.expr(target.index)
            return
        self.expr(target)

    def function(self, node: ast.FunctionExpr) -> None:
        saved_region = self.region
        fid = self.fid_of.get(id(node))
        if fid is not None:
            self.region = ("fn", str(fid))
        local_names: Set[str] = set(node.params)
        _declared_names(node.body, local_names)
        if node.name:
            local_names.add(node.name)
        self.scopes.append(local_names)
        for stmt in node.body:
            self.stmt(stmt)
        self.scopes.pop()
        self.region = saved_region


def build_observability(
    programs: Dict[str, ast.Program], functions: Iterable[FunctionInfo]
) -> ObservabilityIndex:
    """Index every global read/write across a page's scripts."""
    index = ObservabilityIndex()
    fid_of = {id(info.node): info.fid for info in functions}
    walker = _ObsWalker(index, fid_of)
    for url, program in programs.items():
        walker.walk_program(url, program)
    return index


# --------------------------------------------------------------------- #
# Pass 1: discarded-call elimination                                     #
# --------------------------------------------------------------------- #


@dataclass
class _Candidate:
    """A statement-level call whose result nothing consumes."""

    url: str
    region: RegionKey
    stmt: ast.JSNode
    call: ast.Call
    alias: str
    fids: Tuple[int, ...]
    #: dead-store variable name when the statement is ``var x = f(...)``
    dead_store: Optional[str] = None
    #: enclosing function body (None when the statement is top-level)
    fn_body: Optional[List[ast.JSNode]] = None
    closure: Set[RegionKey] = field(default_factory=set)
    joined: PurityInfo = field(default_factory=PurityInfo)

    @property
    def target(self) -> str:
        prefix = f"var {self.dead_store} = " if self.dead_store else ""
        return f"{prefix}{self.alias}()@{self.stmt.span[0]}"


class _CandidateCollector:
    """Find discarded-call statements, tracking the containing region."""

    def __init__(
        self,
        url: str,
        fid_of: Dict[int, int],
        by_name: Dict[str, List[int]],
    ) -> None:
        self.url = url
        self.fid_of = fid_of
        self.by_name = by_name
        self.region: RegionKey = ("top", url)
        self.fn_body: Optional[List[ast.JSNode]] = None
        self.out: List[_Candidate] = []

    def walk_body(self, body: List[ast.JSNode]) -> None:
        for stmt in body:
            call: Optional[ast.Call] = None
            dead: Optional[str] = None
            if isinstance(stmt, ast.ExpressionStmt) and isinstance(
                stmt.expr, ast.Call
            ):
                call = stmt.expr
            elif isinstance(stmt, ast.VarDecl) and isinstance(
                stmt.init, ast.Call
            ):
                call, dead = stmt.init, stmt.name
            if (
                call is not None
                and not call.is_new
                and isinstance(call.callee, ast.Identifier)
                and call.callee.name in self.by_name
            ):
                self.out.append(
                    _Candidate(
                        url=self.url,
                        region=self.region,
                        stmt=stmt,
                        call=call,
                        alias=call.callee.name,
                        fids=tuple(self.by_name[call.callee.name]),
                        dead_store=dead,
                        fn_body=self.fn_body,
                    )
                )
            self.visit(stmt)

    def visit(self, node: ast.JSNode) -> None:
        if isinstance(node, ast.FunctionExpr):
            saved = (self.region, self.fn_body)
            fid = self.fid_of.get(id(node))
            if fid is not None:
                self.region = ("fn", str(fid))
            self.fn_body = node.body
            self.walk_body(node.body)
            self.region, self.fn_body = saved
            return
        if isinstance(node, ast.SwitchStmt):
            self.visit(node.discriminant)
            for test, case_body in node.cases:
                if test is not None:
                    self.visit(test)
                self.walk_body(case_body)
            return
        for name, value in vars(node).items():
            if name in ("span", "node_id"):
                continue
            if isinstance(value, ast.JSNode):
                self.visit(value)
            elif (
                isinstance(value, list)
                and value
                and all(isinstance(item, ast.JSNode) for item in value)
            ):
                self.walk_body(value)


def _child_nodes(node: ast.JSNode) -> List[ast.JSNode]:
    out: List[ast.JSNode] = []
    for name, value in vars(node).items():
        if name in ("span", "node_id"):
            continue
        if isinstance(value, ast.JSNode):
            out.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.JSNode):
                    out.append(item)
                elif isinstance(item, tuple):
                    out.extend(s for s in item if isinstance(s, ast.JSNode))
    return out


def _effect_free(node: ast.JSNode) -> bool:
    """Evaluating the expression cannot write or call anything."""
    if isinstance(node, (ast.Literal, ast.Identifier, ast.ThisExpr)):
        return True
    if isinstance(node, ast.Member):
        return _effect_free(node.obj) and (
            node.index is None or _effect_free(node.index)
        )
    if isinstance(node, (ast.Binary, ast.Logical)):
        return _effect_free(node.left) and _effect_free(node.right)
    if isinstance(node, ast.Unary):
        return _effect_free(node.operand)
    if isinstance(node, ast.Conditional):
        return (
            _effect_free(node.test)
            and _effect_free(node.consequent)
            and _effect_free(node.alternate)
        )
    if isinstance(node, ast.ArrayLiteral):
        return all(_effect_free(e) for e in node.elements)
    if isinstance(node, ast.ObjectLiteral):
        return all(
            _effect_free(v)
            for entry in node.entries
            for v in entry
            if isinstance(v, ast.JSNode)
        )
    return False


def _has_throw(body: List[ast.JSNode]) -> bool:
    """A throw statement in the body itself (nested functions excluded)."""
    for stmt in body:
        if isinstance(stmt, ast.ThrowStmt):
            return True
        if isinstance(stmt, ast.FunctionExpr):
            continue
        for child in _child_nodes(stmt):
            if not isinstance(child, ast.FunctionExpr) and _has_throw([child]):
                return True
    return False


def _closure_throws(
    closure: Set[RegionKey], fn_by_fid: Dict[int, FunctionInfo]
) -> bool:
    for kind, ident in closure:
        if kind != "fn":
            continue
        info = fn_by_fid.get(int(ident))
        if info is not None and _has_throw(info.node.body):
            return True
    return False


def _count_mentions(
    body: List[ast.JSNode], name: str, skip: ast.JSNode
) -> int:
    """Occurrences of ``name`` in ``body`` outside the ``skip`` statement."""
    count = 0

    def walk(node: ast.JSNode) -> None:
        nonlocal count
        if node is skip:
            return
        if isinstance(node, ast.Identifier) and node.name == name:
            count += 1
            return
        if isinstance(node, (ast.VarDecl, ast.ForInStmt)) and node.name == name:
            count += 1
        for child in _child_nodes(node):
            walk(child)

    for stmt in body:
        walk(stmt)
    return count


def _phase1_eligibility(
    candidates: List[_Candidate],
    purity: PurityAnalysis,
    fn_by_fid: Dict[int, FunctionInfo],
    obs: ObservabilityIndex,
) -> Tuple[List[_Candidate], List[Tuple[_Candidate, str]]]:
    """Per-candidate checks that do not depend on the eligible set."""
    eligible: List[_Candidate] = []
    refusals: List[Tuple[_Candidate, str]] = []
    for cand in candidates:
        joined = PurityInfo()
        for fid in cand.fids:
            joined.join(purity.of_function(fid))
        cand.joined = joined
        cand.closure = purity.sync_closure(
            {("fn", str(fid)) for fid in cand.fids}
        )
        reasons: List[str] = []
        if joined.dom_write:
            reasons.append("the callee closure writes the DOM")
        if joined.io:
            reasons.append("the callee closure performs IO")
        if joined.registers:
            reasons.append(
                f"the callee closure registers {sorted(joined.registers)}"
            )
        if joined.unknown_calls:
            reasons.append(
                "the callee closure makes unknown calls "
                f"{sorted(joined.unknown_calls)[:4]}"
            )
        if "*" in joined.global_writes:
            reasons.append("the callee closure stores through unnamable bases")
        if any(not _effect_free(arg) for arg in cand.call.args):
            reasons.append("an argument expression has effects")
        if _closure_throws(cand.closure, fn_by_fid):
            reasons.append("the callee closure contains a throw")
        if cand.dead_store is not None:
            if cand.fn_body is not None:
                if _count_mentions(cand.fn_body, cand.dead_store, cand.stmt):
                    reasons.append(
                        f"the stored variable '{cand.dead_store}' is "
                        "mentioned again in its scope"
                    )
            elif obs.reads.get(cand.dead_store):
                reasons.append(
                    f"the stored global '{cand.dead_store}' is read elsewhere"
                )
        if reasons:
            refusals.append((cand, "; ".join(reasons)))
        else:
            eligible.append(cand)
    return eligible, refusals


def _confinement_failure(
    cand: _Candidate,
    graph: "object",
    fn_by_fid: Dict[int, FunctionInfo],
    cand_calls: Counter,
    obs: ObservabilityIndex,
) -> Optional[str]:
    """Why a writing closure might still be observable, or None if safe.

    Only consulted when the closure writes named globals: then (a) every
    observing read of each written global must sit inside the closure,
    and (b) the closure's functions must be invocable *only* through the
    eliminated call statements — any other mention (a non-DIRECT edge,
    a value escape, or a call the pass is not removing) means the
    closure could run later and observe its own missing writes.
    """
    closure = cand.closure
    for written in sorted(cand.joined.global_writes):
        outside = obs.reads.get(written, set()) - closure
        if outside:
            return (
                f"global '{written}' written by the closure is read "
                "outside it"
            )
    for kind, ident in sorted(closure):
        if kind != "fn":
            continue
        info = fn_by_fid[int(ident)]
        for region, vedges in graph.value_edges.items():
            if region in closure:
                continue
            # VFLOW edges are resolved *invocations* (already covered by
            # the call-count check below), not value escapes.
            if any(
                fid == info.fid and kind is not EdgeKind.VFLOW
                for kind, fid in vedges
            ):
                return f"{info.label()} escapes by value outside the closure"
        for region, nedges in graph.name_edges.items():
            if region in closure:
                continue
            mentions = [(k, n) for k, n in nedges if n in info.aliases]
            if not mentions:
                continue
            if any(k != EdgeKind.DIRECT for k, _n in mentions):
                return (
                    f"{info.label()} is referenced (not just called) "
                    "outside the closure"
                )
            for alias_name, n_edges in Counter(
                n for _k, n in mentions
            ).items():
                if n_edges != cand_calls.get((region, alias_name), 0):
                    return (
                        f"{info.label()} is called outside the "
                        "eliminated statements"
                    )
    return None


def _phase2_confinement(
    eligible: List[_Candidate],
    graph: "object",
    fn_by_fid: Dict[int, FunctionInfo],
    obs: ObservabilityIndex,
) -> Tuple[List[_Candidate], List[Tuple[_Candidate, str]]]:
    """Shrink the eligible set to a fixpoint.

    Dropping one candidate re-exposes its call site as a real invocation,
    which can invalidate another candidate relying on the same closure
    never running — hence the loop.
    """
    refusals: List[Tuple[_Candidate, str]] = []
    current = list(eligible)
    while True:
        cand_calls: Counter = Counter(
            (c.region, c.alias) for c in current
        )
        keep: List[_Candidate] = []
        dropped: List[Tuple[_Candidate, str]] = []
        for cand in current:
            if not cand.joined.global_writes:
                keep.append(cand)
                continue
            reason = _confinement_failure(
                cand, graph, fn_by_fid, cand_calls, obs
            )
            if reason is None:
                keep.append(cand)
            else:
                dropped.append((cand, reason))
        if not dropped:
            return keep, refusals
        refusals.extend(dropped)
        current = keep


def _valueflow_discharge(
    cand: _Candidate,
    flow: "ValueFlowResult",
    purity: PurityAnalysis,
    fn_by_fid: Dict[int, FunctionInfo],
    fid_of: Dict[int, int],
    obs: ObservabilityIndex,
) -> Optional[str]:
    """Obligation text if value flow proves a refused candidate safe.

    The phase-1/2 proof fails whenever an argument is a ``FunctionExpr``
    (lazy-widget registrations) or a written global is read outside the
    closure.  Value flow can still discharge the candidate when:

    * the call site resolves completely to the candidate's callees;
    * every argument is effect-free, or is a function value the resolved
      program never invokes, registers, or leaks;
    * the resolved closure does no DOM/IO/registration/unknown work and
      cannot throw;
    * every global binding and property store performed by the cells the
      call (transitively) enters is unobservable: properties of tracked,
      non-escaping objects that are never read — or only read by compound
      self-updates (``obj.count += 1``) whose results feed no other read.

    Removing such a statement is strictly behavior-shrinking, so the
    facts (computed over the original program) stay valid for the
    transformed one.
    """
    site = flow.sites.get(cand.call.node_id)
    if site is None or site.incomplete or not site.targets:
        return None
    if not set(site.targets) <= set(cand.fids):
        return None

    never_run: List[int] = []
    for arg in cand.call.args:
        if isinstance(arg, ast.FunctionExpr):
            arg_fid = fid_of.get(id(arg))
            if arg_fid is None or arg_fid in flow.live_fids:
                return None
            never_run.append(arg_fid)
        elif not _effect_free(arg):
            return None

    if cand.dead_store is not None:
        if cand.fn_body is not None:
            if _count_mentions(cand.fn_body, cand.dead_store, cand.stmt):
                return None
        elif obs.reads.get(cand.dead_store):
            return None

    joined = PurityInfo()
    for fid in site.targets:
        joined.join(purity.of_function(fid))
    if joined.dom_write or joined.io or joined.registers or joined.unknown_calls:
        return None

    cells = flow.transitive_cells(cand.call.node_id)
    confined: Set[str] = set()
    for cell in cells:
        if flow.cell_gwrites.get(cell):
            return None
        if cell and cell[0] == "fn":
            info = fn_by_fid.get(int(str(cell[1])))
            if info is not None and _has_throw(info.node.body):
                return None
        for oid, key in flow.cell_stores.get(cell, ()):
            if flow.unobservable_store(oid, key) is not None:
                return None
            confined.add(f"{flow.label_for(oid)}.{key}")

    targets = ", ".join(
        fn_by_fid[fid].label() for fid in sorted(site.targets)
    )
    parts = [f"call resolves only to [{targets}]"]
    if never_run:
        names = ", ".join(
            fn_by_fid[fid].label() for fid in sorted(never_run)
        )
        parts.append(
            f"function argument(s) [{names}] are never invoked, "
            "registered, or leaked anywhere in the resolved program"
        )
    if confined:
        parts.append(
            "stores are confined to never-read or self-update-only "
            f"properties {sorted(confined)[:4]}"
        )
    else:
        parts.append("the resolved closure performs no observable store")
    return "; ".join(parts)


def _remove_statements(
    body: List[ast.JSNode], remove_ids: Set[int]
) -> List[ast.JSNode]:
    out: List[ast.JSNode] = []
    for stmt in body:
        if stmt.node_id in remove_ids:
            continue
        _remove_nested(stmt, remove_ids)
        out.append(stmt)
    return out


def _remove_nested(node: ast.JSNode, remove_ids: Set[int]) -> None:
    if isinstance(node, ast.SwitchStmt):
        self_cases = []
        for test, case_body in node.cases:
            if test is not None:
                _remove_nested(test, remove_ids)
            self_cases.append((test, _remove_statements(case_body, remove_ids)))
        node.cases = self_cases
        _remove_nested(node.discriminant, remove_ids)
        return
    for name, value in vars(node).items():
        if name in ("span", "node_id"):
            continue
        if isinstance(value, ast.JSNode):
            _remove_nested(value, remove_ids)
        elif (
            isinstance(value, list)
            and value
            and all(isinstance(item, ast.JSNode) for item in value)
        ):
            setattr(node, name, _remove_statements(value, remove_ids))


def eliminate_discarded_calls(
    analysis: PageAnalysis,
    purity: PurityAnalysis,
    obs: ObservabilityIndex,
    plans: Dict[str, ScriptPlan],
) -> Set[str]:
    """Remove provably-unobservable discarded calls; return changed URLs."""
    graph = analysis.graph
    by_name: Dict[str, List[int]] = {}
    for info in graph.functions:
        for alias in info.aliases:
            by_name.setdefault(alias, []).append(info.fid)
    fid_of = {id(info.node): info.fid for info in graph.functions}
    fn_by_fid = {info.fid: info for info in graph.functions}

    candidates: List[_Candidate] = []
    for url, program in analysis.programs.items():
        collector = _CandidateCollector(url, fid_of, by_name)
        collector.walk_body(program.body)
        candidates.extend(collector.out)

    eligible, refusals = _phase1_eligibility(
        candidates, purity, fn_by_fid, obs
    )
    eligible, confinement_refusals = _phase2_confinement(
        eligible, graph, fn_by_fid, obs
    )
    refusals.extend(confinement_refusals)

    # Phase 3: value-flow discharge.  Strictly additive — it only moves
    # candidates from refused to applied, and removing more discarded
    # calls cannot invalidate the phase-1/2 proofs (fewer invocations).
    rescued: List[Tuple[_Candidate, str]] = []
    flow = graph.valueflow
    if flow is not None and flow.ok:
        remaining: List[Tuple[_Candidate, str]] = []
        for cand, reason in refusals:
            obligation = _valueflow_discharge(
                cand, flow, purity, fn_by_fid, fid_of, obs
            )
            if obligation is None:
                remaining.append((cand, reason))
            else:
                rescued.append((cand, obligation))
        refusals = remaining

    for cand, reason in refusals:
        plans[cand.url].rewrites.append(
            Rewrite(
                pass_name="discarded-call-elim",
                script=cand.url,
                target=cand.target,
                span=cand.stmt.span,
                proof=Proof(
                    category=ProofCategory.UNSAFE,
                    obligation=reason,
                    evidence="jsstatic:purity+observability",
                ),
                applied=False,
            )
        )

    remove_by_url: Dict[str, Set[int]] = {}
    for cand in eligible:
        remove_by_url.setdefault(cand.url, set()).add(cand.stmt.node_id)
        if cand.joined.global_writes:
            obligation = (
                "the callee closure is DOM/IO/registration-free; globals "
                f"{sorted(cand.joined.global_writes)} it writes are read "
                "only within the closure, which no live region can invoke "
                "once the eliminated call sites are gone; arguments are "
                "effect-free and the result is discarded"
            )
        else:
            obligation = (
                "the callee closure writes nothing beyond locals and "
                "fresh allocations; arguments are effect-free and the "
                "result is discarded"
            )
        plans[cand.url].rewrites.append(
            Rewrite(
                pass_name="discarded-call-elim",
                script=cand.url,
                target=cand.target,
                span=cand.stmt.span,
                proof=Proof(
                    category=ProofCategory.PROVEN_SAFE,
                    obligation=obligation,
                    evidence="jsstatic:purity+observability",
                ),
            )
        )
    for cand, obligation in rescued:
        remove_by_url.setdefault(cand.url, set()).add(cand.stmt.node_id)
        plans[cand.url].rewrites.append(
            Rewrite(
                pass_name="discarded-call-elim",
                script=cand.url,
                target=cand.target,
                span=cand.stmt.span,
                proof=Proof(
                    category=ProofCategory.PROVEN_SAFE,
                    obligation=obligation,
                    evidence="jsstatic:valueflow",
                ),
            )
        )
    for url, ids in remove_by_url.items():
        program = analysis.programs[url]
        program.body = _remove_statements(program.body, ids)
    return set(remove_by_url)


# --------------------------------------------------------------------- #
# Pass 2: dead-function elimination                                      #
# --------------------------------------------------------------------- #


def stub_dead_functions(
    analysis: PageAnalysis, plans: Dict[str, ScriptPlan]
) -> None:
    """Replace every dead function's body with a ``__tripwire`` call.

    Nested dead functions vanish with their parent's body, so only the
    outermost dead function of each chain is stubbed (stubbing a child
    whose parent is also being stubbed would be mutating dropped code).
    """
    dead_ids: Set[int] = {f.fid for f in analysis.dead_functions}
    for info in analysis.dead_functions:
        kind, key = info.parent
        covered_by_parent = kind == "fn" and int(key) in dead_ids
        if not covered_by_parent:
            trip = ast.ExpressionStmt(
                span=(0, 0),
                expr=ast.Call(
                    span=(0, 0),
                    callee=ast.Identifier(span=(0, 0), name="__tripwire"),
                    args=[ast.Literal(span=(0, 0), value=float(info.fid))],
                ),
            )
            info.node.body = [trip]
        plans[info.script].rewrites.append(
            Rewrite(
                pass_name="dead-function-elim",
                script=info.script,
                target=info.label(),
                span=info.span,
                proof=Proof(
                    category=ProofCategory.PROVEN_SAFE,
                    obligation=(
                        "no live region has a call/ref/handler/timer/"
                        "callback/escape edge to this function; the stub "
                        "trips __tripwire if the verdict were wrong"
                    ),
                    evidence="jsstatic:callgraph",
                ),
            )
        )


# --------------------------------------------------------------------- #
# Pass 3: constant-branch pruning                                        #
# --------------------------------------------------------------------- #


def _is_constant_test(node: ast.JSNode) -> bool:
    """A real source-level literal test (not a synthetic wrapper)."""
    return (
        isinstance(node, ast.Literal)
        and isinstance(node.value, (bool, float, str))
        and node.span[0] < node.span[1]
    )


def _contains_fndecl(stmts: List[ast.JSNode]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, ast.FunctionDecl):
            return True
        for value in vars(stmt).values():
            if isinstance(value, list) and any(
                isinstance(s, ast.JSNode) for s in value
            ):
                if _contains_fndecl([s for s in value if isinstance(s, ast.JSNode)]):
                    return True
    return False


def _truthy(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return value != ""
    return False


def prune_constant_branches(
    url: str, body: List[ast.JSNode], plan: ScriptPlan
) -> List[ast.JSNode]:
    """Fold ``if (<literal>)`` statements; returns the new statement list."""
    out: List[ast.JSNode] = []
    for stmt in body:
        if isinstance(stmt, ast.IfStmt) and _is_constant_test(stmt.test):
            taken = stmt.consequent if _truthy(stmt.test.value) else stmt.alternate
            dropped = stmt.alternate if _truthy(stmt.test.value) else stmt.consequent
            if _contains_fndecl(dropped):
                plan.rewrites.append(
                    Rewrite(
                        pass_name="branch-prune",
                        script=url,
                        target=f"if@{stmt.span[0]}",
                        span=stmt.span,
                        proof=Proof(
                            category=ProofCategory.UNSAFE,
                            obligation=(
                                "dropped branch declares a function; a "
                                "reference to that name could observe "
                                "the pruning"
                            ),
                            evidence="jsstatic:cfg-fold",
                        ),
                        applied=False,
                    )
                )
                out.append(stmt)
                continue
            plan.rewrites.append(
                Rewrite(
                    pass_name="branch-prune",
                    script=url,
                    target=f"if@{stmt.span[0]}",
                    span=stmt.span,
                    proof=Proof(
                        category=ProofCategory.PROVEN_SAFE,
                        obligation=(
                            "test is a source literal; the dropped arm "
                            "is statically unreachable"
                        ),
                        evidence="jsstatic:cfg-fold",
                    ),
                )
            )
            out.extend(prune_constant_branches(url, list(taken), plan))
            continue
        _prune_nested(url, stmt, plan)
        out.append(stmt)
    return out


def _prune_nested(url: str, node: ast.JSNode, plan: ScriptPlan) -> None:
    """Recurse into statement-list fields and function bodies."""
    if isinstance(node, ast.FunctionExpr):
        node.body = prune_constant_branches(url, node.body, plan)
        return
    if isinstance(node, ast.FunctionDecl):
        _prune_nested(url, node.func, plan)
        return
    for attr in ("consequent", "alternate", "body", "block", "handler",
                 "finally_body"):
        value = getattr(node, attr, None)
        if isinstance(value, list) and all(
            isinstance(s, ast.JSNode) for s in value
        ) and value:
            setattr(node, attr, prune_constant_branches(url, value, plan))
    if isinstance(node, ast.SwitchStmt):
        node.cases = [
            (test, prune_constant_branches(url, case_body, plan))
            for test, case_body in node.cases
        ]
    for value in vars(node).values():
        if isinstance(value, ast.JSNode):
            _prune_nested(url, value, plan)


# --------------------------------------------------------------------- #
# Pass 4: script deferral                                                #
# --------------------------------------------------------------------- #


def _script_bindings(analysis: PageAnalysis, url: str) -> Set[str]:
    """Names ``url`` binds that other scripts could reach: its functions'
    aliases plus its top-level var declarations."""
    names: Set[str] = set()
    for info in analysis.graph.functions:
        if info.script == url:
            names |= info.aliases
    for stmt in analysis.programs[url].body:
        _top_level_vars(stmt, names)
    return names


def _top_level_vars(node: ast.JSNode, acc: Set[str]) -> None:
    if isinstance(node, ast.VarDecl):
        acc.add(node.name)
        return
    if isinstance(node, ast.FunctionExpr):
        return
    for value in vars(node).values():
        if isinstance(value, ast.JSNode):
            _top_level_vars(value, acc)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.JSNode):
                    _top_level_vars(item, acc)


def _cross_references(
    analysis: PageAnalysis,
    url: str,
    bindings: Set[str],
    load_urls: Set[str],
) -> Tuple[Set[RegionKey], Set[RegionKey]]:
    """Regions of *other* scripts that mention ``url``'s bindings.

    Returns ``(load_reachable, deferred_only)``: referencing regions that
    can run synchronously during another load-phase script's execution,
    vs. regions that only run later (handlers, timers, escaped values,
    and the browse phase's late-fetched scripts — a deferred script is
    injected right after the load frame, before any of those run).
    """
    graph = analysis.graph
    fn_script = {str(info.fid): info.script for info in graph.functions}

    def _region_script(key: RegionKey) -> str:
        kind, ident = key
        return ident if kind == "top" else fn_script[ident]

    referencing: Set[RegionKey] = set()
    for key, edges in graph.name_edges.items():
        if _region_script(key) == url:
            continue
        if any(name in bindings for _kind, name in edges):
            referencing.add(key)

    # Synchronous closure of the other load-phase scripts' top levels.
    by_name: Dict[str, List[int]] = {}
    for info in graph.functions:
        for alias in info.aliases:
            by_name.setdefault(alias, []).append(info.fid)
    load_reachable: Set[RegionKey] = set()
    work: List[RegionKey] = [
        ("top", other)
        for other in graph.scripts
        if other != url and other in load_urls
    ]
    seen: Set[RegionKey] = set(work)
    while work:
        key = work.pop()
        load_reachable.add(key)
        targets: Set[RegionKey] = set()
        for kind, fid in graph.value_edges.get(key, ()):
            if kind in (EdgeKind.DIRECT, EdgeKind.CALLBACK):
                targets.add(("fn", str(fid)))
        for kind, name in graph.name_edges.get(key, ()):
            if kind in (EdgeKind.DIRECT, EdgeKind.CALLBACK):
                for fid in by_name.get(name, ()):
                    targets.add(("fn", str(fid)))
        for target in targets:
            if target not in seen:
                seen.add(target)
                work.append(target)

    sync_refs = {key for key in referencing if key in load_reachable}
    late_refs = referencing - sync_refs
    return sync_refs, late_refs


def plan_deferrals(
    analysis: PageAnalysis,
    purity: PurityAnalysis,
    plans: Dict[str, ScriptPlan],
    pixel_touches: Optional[Mapping[str, int]] = None,
    load_urls: Optional[Set[str]] = None,
) -> None:
    """Decide per load-phase script whether its execution can be deferred.

    ``pixel_touches`` is the dynamic evidence (flagged pixel-slice records
    touching each script's source-byte cells, from an original run); when
    absent, only ``PROVEN_SAFE`` deferrals are made.  ``load_urls``
    restricts candidacy (and the load-reachability closure) to the
    scripts fetched during the load phase; late-fetched browse-phase
    scripts are analyzed but never deferred.
    """
    if load_urls is None:
        load_urls = set(analysis.graph.scripts)
    for url in analysis.graph.scripts:
        if url not in load_urls:
            continue
        info: PurityInfo = purity.of_script(url)
        blockers: List[str] = []
        if info.dom_write:
            blockers.append("writes the DOM at load")
        if info.unknown_calls:
            blockers.append(f"unknown calls {sorted(info.unknown_calls)}")
        if "timer" in info.registers:
            blockers.append("schedules timers at load")
        if any(r in ("handler:load", "handler:?") for r in info.registers):
            blockers.append("registers a load handler")
        bindings = _script_bindings(analysis, url)
        sync_refs, late_refs = _cross_references(
            analysis, url, bindings, load_urls
        )
        if sync_refs:
            blockers.append(
                f"{len(sync_refs)} load-reachable cross-script reference(s)"
            )

        if blockers:
            plans[url].rewrites.append(
                Rewrite(
                    pass_name="defer-script",
                    script=url,
                    target=url,
                    span=(0, len(plans[url].original_source)),
                    proof=Proof(
                        category=ProofCategory.UNSAFE,
                        obligation="; ".join(blockers),
                        evidence="jsstatic:purity",
                    ),
                    applied=False,
                )
            )
            continue

        if not late_refs:
            proof = Proof(
                category=ProofCategory.PROVEN_SAFE,
                obligation=(
                    "load-time execution is DOM-free with no unknown "
                    "calls, no timer/load-handler registrations, and no "
                    "other script references its bindings"
                ),
                evidence="jsstatic:purity+callgraph",
            )
        else:
            touches = None if pixel_touches is None else pixel_touches.get(url)
            if touches != 0:
                plans[url].rewrites.append(
                    Rewrite(
                        pass_name="defer-script",
                        script=url,
                        target=url,
                        span=(0, len(plans[url].original_source)),
                        proof=Proof(
                            category=ProofCategory.UNSAFE,
                            obligation=(
                                "cross-script references exist and the "
                                "trace evidence is missing or shows "
                                f"{touches} pixel-slice record(s) touching "
                                "this script's bytes"
                            ),
                            evidence="profiler:pixel-slice",
                        ),
                        applied=False,
                    )
                )
                continue
            proof = Proof(
                category=ProofCategory.DYNAMICALLY_SAFE,
                obligation=(
                    "cross-script references only from regions that run "
                    "after injection; zero flagged pixel-slice records "
                    "touch this script's source bytes in the observed "
                    "trace"
                ),
                evidence="profiler:pixel-slice",
            )
        plans[url].deferred = True
        plans[url].rewrites.append(
            Rewrite(
                pass_name="defer-script",
                script=url,
                target=url,
                span=(0, len(plans[url].original_source)),
                proof=proof,
            )
        )


# --------------------------------------------------------------------- #
# Pass 5: image elision                                                  #
# --------------------------------------------------------------------- #


def plan_image_elisions(
    plan: OptimizationPlan,
    image_touches: Optional[Mapping[str, Tuple[int, int]]],
) -> None:
    """Drop images the pixel slice never touched.

    ``image_touches`` maps each image URL to ``(flagged, total)`` record
    counts against the image's fetched-byte cells in the original run.
    The raster path reads those cells whenever the image paints into a
    drawn tile, so ``flagged == 0`` means no frame ever showed it; the
    engine treats a missing image resource as a silent no-op (the
    painter records the same display item with no source cells).
    """
    if not image_touches:
        return
    for url, (flagged, total) in sorted(image_touches.items()):
        if total == 0:
            continue  # never fetched; nothing to elide
        if flagged == 0:
            proof = Proof(
                category=ProofCategory.DYNAMICALLY_SAFE,
                obligation=(
                    "no flagged pixel-slice record touches the image's "
                    "fetched bytes — it was never rastered into a drawn "
                    "tile of any frame"
                ),
                evidence="profiler:pixel-slice",
            )
            applied = True
        else:
            proof = Proof(
                category=ProofCategory.UNSAFE,
                obligation=(
                    f"{flagged} flagged pixel-slice record(s) touch the "
                    "image's fetched bytes — it reaches the framebuffer"
                ),
                evidence="profiler:pixel-slice",
            )
            applied = False
        plan.image_rewrites.append(
            Rewrite(
                pass_name="elide-image",
                script=url,
                target=url,
                span=(0, 0),
                proof=proof,
                applied=applied,
            )
        )


# --------------------------------------------------------------------- #
# Orchestration                                                          #
# --------------------------------------------------------------------- #

_REWRITING_PASSES = frozenset(
    {"discarded-call-elim", "dead-function-elim", "branch-prune"}
)


def plan_scripts(
    benchmark_name: str,
    sources: Dict[str, str],
    pixel_touches: Optional[Mapping[str, int]] = None,
    late_urls: Iterable[str] = (),
    image_touches: Optional[Mapping[str, Tuple[int, int]]] = None,
) -> OptimizationPlan:
    """Run all passes over ``sources`` and emit transformed JS.

    The cascade runs in two analysis rounds: discarded-call elimination
    rewrites against the first round, then the result is re-analyzed so
    functions whose *only* invokers were eliminated statements are
    recognized as dead and stubbed by the second round.  ``sources``
    must include browse-phase late scripts (named in ``late_urls``) so
    cross-script reference checks see the whole page.
    """
    late = set(late_urls)
    plans: Dict[str, ScriptPlan] = {
        url: ScriptPlan(url=url, original_source=src, transformed_source=src)
        for url, src in sources.items()
    }

    analysis0 = analyze_page(sources)
    purity0 = analyze_page_purity(analysis0.graph, analysis0.programs)
    obs = build_observability(analysis0.programs, analysis0.graph.functions)
    changed = eliminate_discarded_calls(analysis0, purity0, obs, plans)

    intermediate = {
        url: (generate(analysis0.programs[url]) if url in changed else src)
        for url, src in sources.items()
    }
    analysis = analyze_page(intermediate)
    purity = analyze_page_purity(analysis.graph, analysis.programs)

    stub_dead_functions(analysis, plans)
    for url, program in analysis.programs.items():
        program.body = prune_constant_branches(url, program.body, plans[url])
    plan_deferrals(
        analysis, purity, plans, pixel_touches,
        load_urls=set(sources) - late,
    )

    for url, program in analysis.programs.items():
        plan = plans[url]
        if any(
            r.applied and r.pass_name in _REWRITING_PASSES
            for r in plan.rewrites
        ):
            plan.transformed_source = generate(program)

    out = OptimizationPlan(
        benchmark=benchmark_name,
        scripts=plans,
        analysis=analysis,
        purity=purity,
    )
    plan_image_elisions(out, image_touches)
    return out
