"""Verification harness: re-run the transformed workload, prove nothing
the user sees changed.

The optimizer's ultimate gate is dynamic, not static: the original and
transformed workloads both run end to end, and verification asserts

* **pixel identity** — the per-frame framebuffer digests (semantic
  snapshots of every drawn tile, see
  :meth:`repro.browser.compositor.host.CompositorHost.draw_frame`) are
  byte-for-byte equal, frame by frame;
* **zero trip-wires** — no stubbed "dead" function was ever entered;
* **work removed** — the transformed trace has fewer records, accounted
  per pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..browser.context import BYTES_PER_CELL
from ..harness.experiments import ExperimentResult, run_benchmark
from ..profiler import (
    image_attribution,
    image_region_cells,
    script_attribution,
    script_region_cells,
)
from ..workloads import benchmark
from .transforms import OptimizationPlan, Rewrite, plan_scripts


@dataclass
class PassStats:
    """Measured effect of one transform pass."""

    name: str
    applied: int
    bytes_removed: int
    #: trace records saved (rewriting/eliding passes) or moved off the
    #: load path (deferral), measured against the original run
    records: int


@dataclass
class VerificationResult:
    """Outcome of one optimize-and-verify cycle."""

    benchmark: str
    plan: OptimizationPlan
    original: ExperimentResult
    transformed: ExperimentResult
    pixel_touches: Dict[str, int]
    image_touches: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    pass_stats: List[PassStats] = field(default_factory=list)

    # -- verdicts --------------------------------------------------------- #

    @property
    def original_digests(self) -> List[str]:
        return self.original.engine.frame_digests()

    @property
    def transformed_digests(self) -> List[str]:
        return self.transformed.engine.frame_digests()

    @property
    def pixel_identical(self) -> bool:
        return self.original_digests == self.transformed_digests

    @property
    def tripwire_hits(self) -> List[float]:
        runtime = self.transformed.engine.runtime
        return list(runtime.tripwire_hits) if runtime is not None else []

    @property
    def original_records(self) -> int:
        return len(self.original.store)

    @property
    def transformed_records(self) -> int:
        return len(self.transformed.store)

    @property
    def records_saved(self) -> int:
        return self.original_records - self.transformed_records

    @property
    def records_saved_fraction(self) -> float:
        total = self.original_records
        return self.records_saved / total if total else 0.0

    @property
    def verified(self) -> bool:
        return self.pixel_identical and not self.tripwire_hits

    def check(self) -> None:
        """Raise if any safety assertion fails."""
        if self.tripwire_hits:
            hits = sorted(set(int(f) for f in self.tripwire_hits))
            raise AssertionError(
                f"{self.benchmark}: {len(self.tripwire_hits)} trip-wire "
                f"hit(s) — statically-dead functions ran: fids {hits}"
            )
        orig, trans = self.original_digests, self.transformed_digests
        if orig != trans:
            detail = f"{len(orig)} vs {len(trans)} frames"
            for i, (a, b) in enumerate(zip(orig, trans)):
                if a != b:
                    detail = f"first mismatch at frame {i}"
                    break
            raise AssertionError(
                f"{self.benchmark}: framebuffer digests differ ({detail})"
            )


def _deferred_record_count(
    result: ExperimentResult, urls: List[str]
) -> int:
    """Original-run records touching the deferred scripts' source bytes."""
    cells = script_region_cells(result.engine)
    wanted = frozenset().union(*(cells.get(url, frozenset()) for url in urls))
    if not wanted:
        return 0
    count = 0
    for record in result.store.records():
        if not wanted.isdisjoint(record.mem_read) or not wanted.isdisjoint(
            record.mem_written
        ):
            count += 1
    return count


def _pass_stats(
    plan: OptimizationPlan,
    original: ExperimentResult,
    records_saved: int,
    image_touches: Dict[str, Tuple[int, int]],
) -> List[PassStats]:
    """Account the measured record delta to the passes that caused it.

    Image records are measured exactly (cell attribution on the original
    run), as are records *moved* by deferral.  The remaining delta is the
    work the three rewriting passes removed; dead-function-elim and
    branch-prune save source-cell work (fetch/tokenize/compile: ~3
    records per 64-byte cell removed), and everything beyond that
    estimate is execution the discarded-call pass eliminated.
    """
    stats: List[PassStats] = []
    elided = set(plan.elided_images())
    image_records = sum(
        total for url, (_f, total) in image_touches.items() if url in elided
    )
    remaining = max(0, records_saved - image_records)

    byte_deltas: Dict[str, int] = {}
    for name in ("dead-function-elim", "branch-prune"):
        rewrites = [
            r for r in plan.applied(name)
            # nested dead functions disappear with their parent's stub;
            # count bytes once, at the outermost rewrite
            if name != "dead-function-elim" or _outermost(plan, r)
        ]
        byte_deltas[name] = sum(r.span[1] - r.span[0] for r in rewrites)
    source_estimates = {
        name: round(bytes_removed / BYTES_PER_CELL * 3)
        for name, bytes_removed in byte_deltas.items()
    }
    source_total = sum(source_estimates.values())
    scale = min(1.0, remaining / source_total) if source_total else 0.0

    discarded = plan.applied("discarded-call-elim")
    discarded_bytes = sum(r.span[1] - r.span[0] for r in discarded)
    stats.append(
        PassStats(
            name="discarded-call-elim",
            applied=len(discarded),
            bytes_removed=discarded_bytes,
            records=remaining - round(source_total * scale),
        )
    )
    for name in ("dead-function-elim", "branch-prune"):
        stats.append(
            PassStats(
                name=name,
                applied=len(plan.applied(name)),
                bytes_removed=byte_deltas[name],
                records=round(source_estimates[name] * scale),
            )
        )
    deferred = plan.deferred_urls()
    stats.append(
        PassStats(
            name="defer-script",
            applied=len(deferred),
            bytes_removed=0,
            records=_deferred_record_count(original, deferred),
        )
    )
    stats.append(
        PassStats(
            name="elide-image",
            applied=len(elided),
            bytes_removed=0,
            records=image_records,
        )
    )
    return stats


def _outermost(plan: OptimizationPlan, rewrite: Rewrite) -> bool:
    """True when no other applied dead-function span encloses this one."""
    for other in plan.applied("dead-function-elim"):
        if other is rewrite or other.script != rewrite.script:
            continue
        if other.span[0] <= rewrite.span[0] and rewrite.span[1] <= other.span[1]:
            return False
    return True


def optimize_benchmark(name: str, metrics_ticks: int = 2) -> VerificationResult:
    """Plan, transform, re-run, and verify one registered workload."""
    bench = benchmark(name)
    original = run_benchmark(bench, metrics_ticks=metrics_ticks)

    script_cells = script_region_cells(original.engine)
    touches = script_attribution(original.store, original.pixel, script_cells)
    image_touches = image_attribution(
        original.store, original.pixel, image_region_cells(original.engine)
    )

    sources = dict(bench.page.scripts)
    late_urls: List[str] = []
    for batch in bench.late_scripts.values():
        for url, src in batch.items():
            sources[url] = src
            late_urls.append(url)

    plan = plan_scripts(
        name,
        sources,
        pixel_touches=touches,
        late_urls=late_urls,
        image_touches=image_touches,
    )
    transformed_bench = bench.with_scripts(
        plan.replacements(),
        deferred=plan.deferred_urls(),
        dropped_images=plan.elided_images(),
    )
    transformed = run_benchmark(transformed_bench, metrics_ticks=metrics_ticks)

    result = VerificationResult(
        benchmark=name,
        plan=plan,
        original=original,
        transformed=transformed,
        pixel_touches=touches,
        image_touches=image_touches,
    )
    result.pass_stats = _pass_stats(
        plan, original, result.records_saved, image_touches
    )
    return result
