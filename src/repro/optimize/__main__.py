"""Optimizer CLI: rewrite a workload's JS, re-run it, verify pixels.

Usage::

    python -m repro.optimize run <workload> [...]
    python -m repro.optimize plan <workload> [...]
    python -m repro.optimize plan --json <workload> [...]

``run`` executes the full optimize-and-verify cycle for each named
workload: plan all five transform passes against the original run's
evidence, re-execute the transformed workload, and assert the per-frame
framebuffer digests are byte-identical with zero dead-function
trip-wire hits.  ``plan`` prints the planned rewrites (applied and
refused, with their proof obligations) without the verification re-run;
``plan --json`` emits the same decisions machine-readably, with the
applied and refused lists sorted so plans from different analysis
versions diff cleanly.

Unknown workload names exit with status 2 — uniformly with the other
CLI front ends.
"""

from __future__ import annotations

import sys
from typing import List

_COMMANDS = ("run", "plan")


def _validate(names: List[str]) -> int:
    from ..workloads import benchmark_names, unknown_names

    unknown = unknown_names(names)
    if unknown:
        print(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(benchmark_names())}",
            file=sys.stderr,
        )
        return 2
    return 0


def _run(names: List[str]) -> int:
    from .report import verification_report
    from .verify import optimize_benchmark

    status = 0
    for i, name in enumerate(names):
        if i:
            print()
        result = optimize_benchmark(name)
        print(verification_report(result))
        if not result.verified:
            status = 1
    return status


def _plan(names: List[str], as_json: bool = False) -> int:
    from ..jsstatic.compare import benchmark_sources
    from ..workloads import benchmark
    from .report import plan_json, plan_report
    from .transforms import plan_scripts

    payloads = []
    for i, name in enumerate(names):
        bench = benchmark(name)
        late = {
            url for batch in bench.late_scripts.values() for url in batch
        }
        plan = plan_scripts(
            name, benchmark_sources(bench), late_urls=late
        )
        if as_json:
            payloads.append(plan_json(plan))
        else:
            if i:
                print()
            print(plan_report(plan))
    if as_json:
        import json

        print(json.dumps(payloads, indent=2))
    return 0


def main(argv: List[str]) -> int:
    if len(argv) >= 2 and argv[0] in _COMMANDS:
        rest = argv[1:]
        as_json = "--json" in rest
        names = [a for a in rest if a != "--json"]
        if not names:
            print(__doc__)
            return 2
        if as_json and argv[0] == "run":
            print(__doc__)
            return 2
        status = _validate(names)
        if status:
            return status
        return _run(names) if argv[0] == "run" else _plan(names, as_json)
    print(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        sys.exit(0)
