"""Human-readable rendering of an optimize-and-verify cycle."""

from __future__ import annotations

from typing import Dict, List

from .transforms import OptimizationPlan, ProofCategory, Rewrite
from .verify import VerificationResult


def _rewrite_json(r: Rewrite) -> Dict[str, object]:
    return {
        "pass": r.pass_name,
        "script": r.script,
        "target": r.target,
        "span": list(r.span),
        "category": r.proof.category.value,
        "obligation": r.proof.obligation,
        "evidence": r.proof.evidence,
    }


def plan_json(plan: OptimizationPlan) -> Dict[str, object]:
    """Machine-readable plan: applied rewrites plus the refusal list.

    Both lists are sorted by (pass, script, span) so two plans diff
    cleanly — the refusal list is the artifact later analysis passes
    burn down, so its order must not depend on planning internals.
    """
    order = (lambda r: (r.pass_name, r.script, r.span))
    applied = sorted(plan.applied(), key=order)
    refused = sorted(plan.refused(), key=order)
    return {
        "benchmark": plan.benchmark,
        "applied": [_rewrite_json(r) for r in applied],
        "refused": [_rewrite_json(r) for r in refused],
        "summary": {
            "applied": len(applied),
            "refused": len(refused),
            "proven_safe": sum(
                1 for r in applied
                if r.proof.category is ProofCategory.PROVEN_SAFE
            ),
            "dynamically_safe": sum(
                1 for r in applied
                if r.proof.category is ProofCategory.DYNAMICALLY_SAFE
            ),
            "deferred_scripts": sorted(plan.deferred_urls()),
        },
    }


def plan_report(plan: OptimizationPlan) -> str:
    """Every rewrite the planner decided, applied and refused."""
    lines: List[str] = [f"optimization plan: {plan.benchmark}"]
    for category in (ProofCategory.PROVEN_SAFE, ProofCategory.DYNAMICALLY_SAFE):
        rewrites = [
            r for r in plan.applied() if r.proof.category is category
        ]
        lines.append(f"  {category.value} ({len(rewrites)} applied)")
        for r in rewrites:
            lines.append(
                f"    {r.pass_name:20s} {r.script}:{r.target} "
                f"[{r.proof.evidence}]"
            )
    refused = plan.refused()
    lines.append(f"  refused ({len(refused)})")
    for r in refused:
        lines.append(
            f"    {r.pass_name:20s} {r.script}:{r.target} — "
            f"{r.proof.obligation}"
        )
    return "\n".join(lines)


def verification_report(result: VerificationResult) -> str:
    """The verification verdict plus the per-pass accounting table."""
    lines: List[str] = [f"== optimize {result.benchmark} =="]
    n_frames = len(result.original_digests)
    lines.append(
        f"pixel identity : {'OK' if result.pixel_identical else 'FAILED'}"
        f" ({n_frames} frames)"
    )
    lines.append(
        f"trip-wires     : {len(result.tripwire_hits)}"
        f" {'OK' if not result.tripwire_hits else 'FIRED'}"
    )
    lines.append(
        f"trace records  : {result.original_records} -> "
        f"{result.transformed_records} "
        f"({result.records_saved:+d}, "
        f"{result.records_saved_fraction:.1%} saved)"
    )
    lines.append(f"{'pass':<22} {'applied':>7} {'bytes':>8} {'records':>8}")
    for stat in result.pass_stats:
        lines.append(
            f"{stat.name:<22} {stat.applied:>7} {stat.bytes_removed:>8} "
            f"{stat.records:>8}"
        )
    applied = result.plan.applied()
    proven = sum(
        1 for r in applied if r.proof.category is ProofCategory.PROVEN_SAFE
    )
    dynamic = sum(
        1 for r in applied
        if r.proof.category is ProofCategory.DYNAMICALLY_SAFE
    )
    lines.append(
        f"proofs         : {proven} proven-safe, {dynamic} dynamically-safe, "
        f"{len(result.plan.refused())} refused"
    )
    return "\n".join(lines)
