"""Human-readable rendering of an optimize-and-verify cycle."""

from __future__ import annotations

from typing import List

from .transforms import OptimizationPlan, ProofCategory
from .verify import VerificationResult


def plan_report(plan: OptimizationPlan) -> str:
    """Every rewrite the planner decided, applied and refused."""
    lines: List[str] = [f"optimization plan: {plan.benchmark}"]
    for category in (ProofCategory.PROVEN_SAFE, ProofCategory.DYNAMICALLY_SAFE):
        rewrites = [
            r for r in plan.applied() if r.proof.category is category
        ]
        lines.append(f"  {category.value} ({len(rewrites)} applied)")
        for r in rewrites:
            lines.append(
                f"    {r.pass_name:20s} {r.script}:{r.target} "
                f"[{r.proof.evidence}]"
            )
    refused = plan.refused()
    lines.append(f"  refused ({len(refused)})")
    for r in refused:
        lines.append(
            f"    {r.pass_name:20s} {r.script}:{r.target} — "
            f"{r.proof.obligation}"
        )
    return "\n".join(lines)


def verification_report(result: VerificationResult) -> str:
    """The verification verdict plus the per-pass accounting table."""
    lines: List[str] = [f"== optimize {result.benchmark} =="]
    n_frames = len(result.original_digests)
    lines.append(
        f"pixel identity : {'OK' if result.pixel_identical else 'FAILED'}"
        f" ({n_frames} frames)"
    )
    lines.append(
        f"trip-wires     : {len(result.tripwire_hits)}"
        f" {'OK' if not result.tripwire_hits else 'FIRED'}"
    )
    lines.append(
        f"trace records  : {result.original_records} -> "
        f"{result.transformed_records} "
        f"({result.records_saved:+d}, "
        f"{result.records_saved_fraction:.1%} saved)"
    )
    lines.append(f"{'pass':<22} {'applied':>7} {'bytes':>8} {'records':>8}")
    for stat in result.pass_stats:
        lines.append(
            f"{stat.name:<22} {stat.applied:>7} {stat.bytes_removed:>8} "
            f"{stat.records:>8}"
        )
    applied = result.plan.applied()
    proven = sum(
        1 for r in applied if r.proof.category is ProofCategory.PROVEN_SAFE
    )
    dynamic = sum(
        1 for r in applied
        if r.proof.category is ProofCategory.DYNAMICALLY_SAFE
    )
    lines.append(
        f"proofs         : {proven} proven-safe, {dynamic} dynamically-safe, "
        f"{len(result.plan.refused())} refused"
    )
    return "\n".join(lines)
