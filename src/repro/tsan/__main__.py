"""Concurrency-sanitizer CLI.

Usage::

    python -m repro.tsan races /tmp/amazon.ucwa
    python -m repro.tsan races --workload wiki_article [--json]
    python -m repro.tsan locks [--workload NAME] [--json]
    python -m repro.tsan report [--json] [--no-recall]

``races`` replays a saved trace (or a registered workload, run live so
memory-cell names are available) through the happens-before detector and
exits non-zero if any race is found.  ``locks`` runs the static lock-order
analysis — with ``--workload`` it also cross-references the statically
predicted orders against the orders that run actually exercised — and
exits non-zero on cycles, inversions, or unpredicted observed orders.
``report`` produces the full sanitizer report (paper workloads, fuzz
recall, lock order) and exits non-zero unless every workload is race-free,
recall is >= 0.9, and the lock-order graph is clean.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from .detector import cell_namer, detect_races
from .lockorder import analyze_lock_order, cross_reference, observed_orders


def _load_workload(name: str):
    from ..harness.experiments import run_engine
    from ..workloads import benchmark

    engine = run_engine(benchmark(name))
    return engine.trace_store(), cell_namer(engine.ctx.memory)


def _races(argv: List[str]) -> int:
    as_json = "--json" in argv
    argv = [a for a in argv if a != "--json"]
    workload: Optional[str] = None
    path: Optional[str] = None
    skip = False
    for i, arg in enumerate(argv):
        if skip:
            skip = False
            continue
        if arg == "--workload":
            if i + 1 >= len(argv):
                print("--workload needs a name")
                return 2
            workload = argv[i + 1]
            skip = True
        elif arg.startswith("--workload="):
            workload = arg[len("--workload="):]
        elif arg.startswith("--"):
            print(f"unknown option {arg!r}")
            return 2
        else:
            path = arg
    if (workload is None) == (path is None):
        print("races needs exactly one of: a trace path, or --workload NAME")
        return 2
    if workload is not None:
        store, namer = _load_workload(workload)
        label = workload
    else:
        from ..trace.store import load_trace

        assert path is not None
        store, namer, label = load_trace(path), None, path
    report = detect_races(store, cell_names=namer)
    if as_json:
        print(json.dumps({"trace": label, **report.to_json()}, indent=2))
    else:
        print(
            f"{label}: {report.n_records} records, {report.n_threads} threads, "
            f"{report.sync_event_total()} sync events across "
            f"{report.n_sync_objects} sync objects"
        )
        if report.ok:
            print("no races found")
        else:
            print(f"{len(report.races)} race(s):")
            for race in report.races:
                print(f"  {race.describe()}")
    return 0 if report.ok else 1


def _locks(argv: List[str]) -> int:
    as_json = "--json" in argv
    argv = [a for a in argv if a != "--json"]
    workloads: List[str] = []
    skip = False
    for i, arg in enumerate(argv):
        if skip:
            skip = False
            continue
        if arg == "--workload":
            if i + 1 >= len(argv):
                print("--workload needs a name")
                return 2
            workloads.append(argv[i + 1])
            skip = True
        elif arg.startswith("--workload="):
            workloads.append(arg[len("--workload="):])
        else:
            print(f"unknown option {arg!r}")
            return 2
    graph = analyze_lock_order()
    cycles = graph.cycles()
    inversions = graph.inversions()
    failures = bool(cycles or inversions or graph.unresolved)
    xrefs: dict = {}
    for name in workloads:
        store, namer = _load_workload(name)
        xrefs[name] = cross_reference(graph, observed_orders(store, namer))
        if xrefs[name]["unpredicted_observed"]:
            failures = True
    if as_json:
        print(
            json.dumps(
                {"static": graph.to_json(), "cross_reference": xrefs}, indent=2
            )
        )
    else:
        print(
            f"{len(graph.locks)} locks, {len(graph.sites)} acquisition sites, "
            f"{len(graph.unresolved)} unresolved"
        )
        for a in sorted(graph.edges):
            for b in sorted(graph.edges[a]):
                sites = graph.witnesses.get((a, b), [])
                print(f"  {a} -> {b}   [{sites[0] if sites else '?'}]")
        print(f"cycles: {len(cycles)}, inversion pairs: {len(inversions)}")
        for cycle in cycles:
            print("  CYCLE: " + " -> ".join(cycle))
        for a, b in inversions:
            print(f"  INVERSION: {a} <-> {b}")
        for name, xref in xrefs.items():
            print(
                f"{name}: unpredicted observed orders: "
                f"{len(xref['unpredicted_observed'])}, "
                f"static edges not exercised: {len(xref['unexercised_static'])}"
            )
            for a, b in xref["unpredicted_observed"]:
                print(f"  UNPREDICTED: {a} -> {b}")
    return 1 if failures else 0


def _report(argv: List[str]) -> int:
    from .report import full_report

    as_json = "--json" in argv
    include_recall = "--no-recall" not in argv
    for arg in argv:
        if arg not in ("--json", "--no-recall"):
            print(f"unknown option {arg!r}")
            return 2
    text, data = full_report(include_recall=include_recall)
    if as_json:
        print(json.dumps(data, indent=2))
    else:
        print(text)
    failures = not all(w["race_free"] for w in data["workloads"])
    if data["lock_order"]["cycles"] or data["lock_order"]["inversions"]:
        failures = True
    for xref in data["cross_reference"].values():
        if xref["unpredicted_observed"]:
            failures = True
    if include_recall:
        recall = data["fuzz_recall"]
        if recall["recall"] < 0.9 or recall["clean_with_false_positives"]:
            failures = True
    return 1 if failures else 0


def main(argv) -> int:
    if argv and argv[0] == "races":
        return _races(argv[1:])
    if argv and argv[0] == "locks":
        return _locks(argv[1:])
    if argv and argv[0] == "report":
        return _report(argv[1:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. `... | head`
        sys.exit(0)
