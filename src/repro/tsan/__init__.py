"""Concurrency sanitizer: happens-before race detection + lock-order analysis.

The dynamic half (:mod:`.detector`) replays recorded traces with vector
clocks, deriving ordering edges from the sync-marker convention of
:mod:`repro.trace.records` (IPC channel release/acquire, scheduler queue
locks, engine mutexes).  The static half (:mod:`.lockorder`) analyzes the
engine sources for lock acquisition sites, builds the lock-order graph and
reports deadlock cycles/inversions, cross-referenced against dynamically
observed orders.  :mod:`.report` ties both to the paper workloads and the
fuzz recall measurement; ``python -m repro.tsan`` is the CLI.
"""

from .detector import (
    Access,
    Race,
    RaceDetector,
    RaceReport,
    cell_namer,
    detect_races,
)
from .lockorder import (
    AcquisitionSite,
    LockOrderGraph,
    ObservedOrders,
    analyze_lock_order,
    cross_reference,
    observed_orders,
)
from .report import (
    PAPER_WORKLOADS,
    FuzzRecallResult,
    WorkloadRaceResult,
    full_report,
    measure_recall,
    run_workload,
)

__all__ = [
    "Access",
    "Race",
    "RaceDetector",
    "RaceReport",
    "cell_namer",
    "detect_races",
    "AcquisitionSite",
    "LockOrderGraph",
    "ObservedOrders",
    "analyze_lock_order",
    "cross_reference",
    "observed_orders",
    "PAPER_WORKLOADS",
    "FuzzRecallResult",
    "WorkloadRaceResult",
    "full_report",
    "measure_recall",
    "run_workload",
]
