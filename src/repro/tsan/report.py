"""The concurrency-sanitizer report: workload races, recall, lock order.

Three sections, matching the acceptance criteria of the sanitizer:

* the four paper workloads replayed through the race detector (expected
  race-free), with per-thread sync-edge counts folded into the thread
  breakdown;
* fuzz recall — deliberately injected unsynchronized access pairs in
  otherwise well-synchronized random traces, measured the same way
  ``jsstatic/compare.py`` measures recall against dynamic ground truth —
  plus the false-positive check on clean sync traces;
* the static lock-order graph, its cycles/inversions, and the
  cross-reference against the orders each workload actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..workloads.fuzz import random_sync_trace
from .detector import RaceReport, cell_namer, detect_races
from .lockorder import (
    LockOrderGraph,
    ObservedOrders,
    analyze_lock_order,
    cross_reference,
    observed_orders,
)

#: the paper's four workloads (Section II benchmarks).
PAPER_WORKLOADS = ("wiki_article", "amazon_desktop", "bing", "google_maps")

#: fuzz-recall defaults: seeds x injections per seed.
RECALL_SEEDS = tuple(range(12))
RECALL_INJECTIONS = 5
CLEAN_SEEDS = tuple(range(12, 20))


@dataclass
class WorkloadRaceResult:
    """Race detection + observed lock orders for one workload."""

    name: str
    report: RaceReport
    observed: ObservedOrders
    thread_names: Dict[int, str]
    instructions: Dict[int, int]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "race_free": self.report.ok,
            "n_races": len(self.report.races),
            "n_records": self.report.n_records,
            "n_threads": self.report.n_threads,
            "n_sync_objects": self.report.n_sync_objects,
            "sync_events": self.report.to_json()["sync_events"],
            "observed_lock_orders": self.observed.to_json(),
        }


@dataclass
class FuzzRecallResult:
    """Ground-truth detection rates over the sync fuzz traces."""

    injected: int = 0
    detected: int = 0
    clean_traces: int = 0
    clean_with_false_positives: int = 0
    per_seed: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def recall(self) -> float:
        return self.detected / self.injected if self.injected else 1.0

    def to_json(self) -> dict:
        return {
            "injected": self.injected,
            "detected": self.detected,
            "recall": self.recall,
            "clean_traces": self.clean_traces,
            "clean_with_false_positives": self.clean_with_false_positives,
            "per_seed": [
                {"seed": seed, "injected": inj, "detected": det}
                for seed, inj, det in self.per_seed
            ],
        }


def run_workload(name: str) -> WorkloadRaceResult:
    """Race-check one registered workload (cached engine run)."""
    from ..harness.experiments import cached_run

    result = cached_run(name)
    namer = cell_namer(result.engine.ctx.memory)
    return WorkloadRaceResult(
        name=name,
        report=detect_races(result.store, cell_names=namer),
        observed=observed_orders(result.store, cell_names=namer),
        thread_names=dict(result.store.metadata.thread_names),
        instructions=result.store.instructions_per_thread(),
    )


def measure_recall(
    seeds: Sequence[int] = RECALL_SEEDS,
    injections: int = RECALL_INJECTIONS,
    clean_seeds: Sequence[int] = CLEAN_SEEDS,
    target_records: int = 2_500,
) -> FuzzRecallResult:
    """Detection rate on injected races; false positives on clean traces."""
    result = FuzzRecallResult()
    for seed in seeds:
        store, injected = random_sync_trace(
            seed, target_records=target_records, inject_races=injections
        )
        report = detect_races(store)
        detected = sum(1 for d in injected if d.cell in report.racy_cells)
        result.injected += len(injected)
        result.detected += detected
        result.per_seed.append((seed, len(injected), detected))
    for seed in clean_seeds:
        store, injected = random_sync_trace(seed, target_records=target_records)
        assert not injected
        result.clean_traces += 1
        if not detect_races(store).ok:
            result.clean_with_false_positives += 1
    return result


# ---------------------------------------------------------------------- #
# Rendering                                                               #
# ---------------------------------------------------------------------- #


def _thread_label(result: WorkloadRaceResult, tid: int) -> str:
    return result.thread_names.get(tid, f"tid{tid}")


def workload_table(results: Sequence[WorkloadRaceResult]) -> str:
    lines = [
        "Race detection over the paper workloads",
        "=" * 71,
        f"{'workload':<18} {'records':>9} {'threads':>7} "
        f"{'sync events':>11} {'races':>6}  verdict",
        "-" * 71,
    ]
    for result in results:
        verdict = "race-free" if result.report.ok else "RACES FOUND"
        lines.append(
            f"{result.name:<18} {result.report.n_records:>9} "
            f"{result.report.n_threads:>7} "
            f"{result.report.sync_event_total():>11} "
            f"{len(result.report.races):>6}  {verdict}"
        )
    return "\n".join(lines)


def sync_breakdown(result: WorkloadRaceResult) -> str:
    """Per-thread sync-edge counts next to the instruction breakdown."""
    lines = [
        f"Per-thread sync edges: {result.name}",
        "-" * 66,
        f"{'thread':<28} {'instructions':>12} {'sync events':>11}  kinds",
    ]
    for tid in sorted(result.instructions):
        kinds = result.report.sync_events.get(tid, {})
        kinds_text = (
            " ".join(f"{k}={v}" for k, v in sorted(kinds.items())) or "-"
        )
        lines.append(
            f"{_thread_label(result, tid):<28} "
            f"{result.instructions.get(tid, 0):>12} "
            f"{result.report.sync_event_total(tid):>11}  {kinds_text}"
        )
    return "\n".join(lines)


def recall_table(recall: FuzzRecallResult) -> str:
    lines = [
        "Fuzz-injected race recall",
        "=" * 46,
        f"injected pairs : {recall.injected}",
        f"detected       : {recall.detected}",
        f"recall         : {recall.recall:.3f}",
        f"clean traces   : {recall.clean_traces} "
        f"({recall.clean_with_false_positives} with false positives)",
    ]
    return "\n".join(lines)


def lock_order_section(
    graph: LockOrderGraph, results: Sequence[WorkloadRaceResult]
) -> str:
    lines = [
        "Static lock-order analysis",
        "=" * 60,
        f"locks: {len(graph.locks)}  acquisition sites: {len(graph.sites)}  "
        f"unresolved: {len(graph.unresolved)}",
    ]
    for a in sorted(graph.edges):
        for b in sorted(graph.edges[a]):
            lines.append(f"  {a} -> {b}")
    cycles = graph.cycles()
    inversions = graph.inversions()
    lines.append(
        f"cycles: {len(cycles)}  inversion pairs: {len(inversions)}"
    )
    for cycle in cycles:
        lines.append("  CYCLE: " + " -> ".join(cycle))
    for a, b in inversions:
        lines.append(f"  INVERSION: {a} <-> {b}")
    for result in results:
        xref = cross_reference(graph, result.observed)
        lines.append(
            f"{result.name}: observed {len(result.observed.edges)} distinct "
            f"orders over {result.observed.acquires} acquires; "
            f"unpredicted={len(xref['unpredicted_observed'])} "
            f"unexercised={len(xref['unexercised_static'])}"
        )
        for a, b in xref["unpredicted_observed"]:
            lines.append(f"  UNPREDICTED: {a} -> {b}")
    return "\n".join(lines)


def full_report(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    include_recall: bool = True,
) -> Tuple[str, dict]:
    """Build the complete report; returns (text, json-ready dict)."""
    results = [run_workload(name) for name in workloads]
    graph = analyze_lock_order()
    sections = [workload_table(results), ""]
    for result in results:
        sections.append(sync_breakdown(result))
        sections.append("")
    recall: Optional[FuzzRecallResult] = None
    if include_recall:
        recall = measure_recall()
        sections.append(recall_table(recall))
        sections.append("")
    sections.append(lock_order_section(graph, results))
    data = {
        "workloads": [result.to_json() for result in results],
        "lock_order": graph.to_json(),
        "cross_reference": {
            result.name: cross_reference(graph, result.observed)
            for result in results
        },
    }
    if recall is not None:
        data["fuzz_recall"] = recall.to_json()
    return "\n".join(sections), data
