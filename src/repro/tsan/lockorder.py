"""Static lock-order analysis over the engine's lock acquisition sites.

Acquisition sites are ``with <expr>.held():`` statements where the context
expression resolves to a :class:`~repro.machine.tracer.TracedLock`.  Three
resolution strategies cover the engine's idioms:

* inline ``ctx.lock("literal").held()`` — the name is the literal; f-string
  names canonicalize each formatted field to ``*`` (a lock *family*, e.g.
  ``sched:lock:queue:*``);
* local aliases — ``pending_lock = self.ctx.lock("...")`` earlier in the
  function (including enclosing functions for closures);
* lock factories — helper methods whose return expression is a
  ``.lock(...)`` call (``Scheduler._queue_lock``).

The analysis tracks the set of locks statically held at each site (nested
``with`` blocks), records direct ordering edges, and closes them
interprocedurally: a call executed under held locks contributes edges to
every lock the callee may (transitively) acquire.  Call targets resolve by
bare method name — conservative, but ``self.method()`` binds to the
enclosing class when possible and a function never resolves to itself
through a non-``self`` receiver, which avoids spurious self-cycles from
name collisions across classes.

The resulting graph is checked for cycles (potential deadlocks) and
inversion pairs, and can be cross-referenced against the orders actually
observed in a trace (:func:`observed_orders`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..trace.records import SYNC_ACQUIRE, SYNC_RELEASE, sync_event_of
from ..trace.store import TraceStore
from .detector import CellNamer

#: default analysis root: the simulated engine package.
ENGINE_ROOT = Path(__file__).resolve().parents[1] / "browser"


@dataclass(frozen=True)
class AcquisitionSite:
    """One static ``with <lock>.held():`` occurrence."""

    lock: str
    file: str
    line: int
    function: str
    held: Tuple[str, ...]


@dataclass
class LockOrderGraph:
    """Directed graph: edge a->b means b is acquired while a is held."""

    locks: Set[str] = field(default_factory=set)
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: (held, acquired) -> witnessing sites ("file:line in function")
    witnesses: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    sites: List[AcquisitionSite] = field(default_factory=list)
    #: ``.held()`` sites whose lock name could not be resolved
    unresolved: List[str] = field(default_factory=list)

    def add_edge(self, held: str, acquired: str, witness: str) -> None:
        self.locks.add(held)
        self.locks.add(acquired)
        self.edges.setdefault(held, set()).add(acquired)
        where = self.witnesses.setdefault((held, acquired), [])
        if witness not in where:
            where.append(witness)

    def cycles(self) -> List[List[str]]:
        """Elementary cycles found by DFS (self-loops included)."""
        found: List[List[str]] = []
        seen_keys: Set[Tuple[str, ...]] = set()

        def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
            for succ in sorted(self.edges.get(node, ())):
                if succ in on_path:
                    cycle = path[path.index(succ):] + [succ]
                    key = tuple(sorted(cycle[:-1]))
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(cycle)
                    continue
                on_path.add(succ)
                dfs(succ, path + [succ], on_path)
                on_path.discard(succ)

        for start in sorted(self.locks):
            dfs(start, [start], {start})
        return found

    def inversions(self) -> List[Tuple[str, str]]:
        """Unordered pairs acquired in both orders somewhere."""
        pairs: List[Tuple[str, str]] = []
        for a in sorted(self.edges):
            for b in sorted(self.edges[a]):
                if a < b and a in self.edges.get(b, set()):
                    pairs.append((a, b))
        return pairs

    def to_json(self) -> dict:
        return {
            "locks": sorted(self.locks),
            "edges": {a: sorted(bs) for a, bs in sorted(self.edges.items())},
            "n_sites": len(self.sites),
            "unresolved_sites": list(self.unresolved),
            "cycles": self.cycles(),
            "inversions": [list(pair) for pair in self.inversions()],
        }


# ---------------------------------------------------------------------- #
# Lock-name resolution                                                   #
# ---------------------------------------------------------------------- #


def _literal_lock_name(node: ast.expr) -> Optional[str]:
    """Name from the argument of a ``.lock(...)`` call."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _lock_call_name(node: ast.expr) -> Optional[str]:
    """Resolve ``<expr>.lock(<name>)`` to a canonical lock name."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "lock"
        and len(node.args) == 1
    ):
        return _literal_lock_name(node.args[0])
    return None


def _call_bare_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _receiver_is_self(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "self"
    )


@dataclass
class _FunctionFacts:
    """Per-definition facts gathered in the AST pass."""

    qualname: str
    bare_name: str
    class_name: Optional[str]
    file: str
    #: locks acquired directly anywhere in the body
    direct_locks: Set[str] = field(default_factory=set)
    #: (held-set, callee bare name, receiver-is-self, line) for every call
    calls: List[Tuple[Tuple[str, ...], str, bool, int]] = field(default_factory=list)


class _ModuleScanner:
    """Scans one module; shares factory/lock tables across modules."""

    def __init__(
        self,
        rel: str,
        factories: Dict[str, str],
        graph: LockOrderGraph,
        functions: List[_FunctionFacts],
    ) -> None:
        self.rel = rel
        self.factories = factories
        self.graph = graph
        self.functions = functions

    def scan(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(item, node.name, {})
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node, None, {})

    # -------------------------------------------------------------- #

    def _resolve_held_expr(
        self, node: ast.expr, aliases: Dict[str, str]
    ) -> Optional[str]:
        """Lock name of a with-item context expression, if it is a
        ``.held()`` call; None for non-lock with statements."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "held"
        ):
            return None
        inner = node.func.value
        direct = _lock_call_name(inner)
        if direct is not None:
            return direct
        if isinstance(inner, ast.Name):
            return aliases.get(inner.id, "")
        if isinstance(inner, ast.Call):
            callee = _call_bare_name(inner)
            if callee is not None and callee in self.factories:
                return self.factories[callee]
        return ""

    def _scan_function(
        self,
        node,
        class_name: Optional[str],
        outer_aliases: Dict[str, str],
        qual_prefix: str = "",
    ) -> None:
        qualname = f"{qual_prefix}{class_name + '.' if class_name else ''}{node.name}"
        facts = _FunctionFacts(
            qualname=qualname,
            bare_name=node.name,
            class_name=class_name,
            file=self.rel,
        )
        self.functions.append(facts)
        aliases = dict(outer_aliases)
        self._scan_body(node.body, (), aliases, facts, class_name, qualname)

    def _scan_body(
        self,
        stmts: Sequence[ast.stmt],
        held: Tuple[str, ...],
        aliases: Dict[str, str],
        facts: _FunctionFacts,
        class_name: Optional[str],
        qualname: str,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Closures run later, not under the locks held at their
                # definition site; analyze them as their own functions
                # (inheriting the enclosing alias scope).
                self._scan_function(
                    stmt, class_name, aliases, qual_prefix=f"{qualname}."
                )
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                lock_name = _lock_call_name(stmt.value)
                if isinstance(target, ast.Name) and lock_name is not None:
                    aliases[target.id] = lock_name
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_held = held
                for item in stmt.items:
                    resolved = self._resolve_held_expr(item.context_expr, aliases)
                    if resolved is None:
                        self._record_calls(item.context_expr, inner_held, facts)
                        continue
                    if not resolved:
                        self.graph.unresolved.append(
                            f"{self.rel}:{item.context_expr.lineno} in {qualname}"
                        )
                        continue
                    site = AcquisitionSite(
                        lock=resolved,
                        file=self.rel,
                        line=item.context_expr.lineno,
                        function=qualname,
                        held=inner_held,
                    )
                    self.graph.sites.append(site)
                    self.graph.locks.add(resolved)
                    facts.direct_locks.add(resolved)
                    witness = f"{self.rel}:{site.line} in {qualname}"
                    for h in inner_held:
                        self.graph.add_edge(h, resolved, witness)
                    inner_held = inner_held + (resolved,)
                self._scan_body(
                    stmt.body, inner_held, aliases, facts, class_name, qualname
                )
                continue
            # Recurse into compound statements, keeping the held set.
            for body_field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, body_field, None)
                if inner:
                    self._scan_body(
                        inner, held, aliases, facts, class_name, qualname
                    )
            for handler in getattr(stmt, "handlers", ()):
                self._scan_body(
                    handler.body, held, aliases, facts, class_name, qualname
                )
            if not isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try)):
                self._record_calls(stmt, held, facts)
            else:
                # Condition/iterable expressions of compound statements.
                for expr_field in ("test", "iter"):
                    expr = getattr(stmt, expr_field, None)
                    if expr is not None:
                        self._record_calls(expr, held, facts)

    def _record_calls(
        self, node: ast.AST, held: Tuple[str, ...], facts: _FunctionFacts
    ) -> None:
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                name = _call_bare_name(call)
                if name is not None:
                    facts.calls.append(
                        (held, name, _receiver_is_self(call), call.lineno)
                    )


# ---------------------------------------------------------------------- #
# Interprocedural closure                                                 #
# ---------------------------------------------------------------------- #


def _collect_factories(trees: Dict[str, ast.Module]) -> Dict[str, str]:
    """Functions whose return expression is a ``.lock(...)`` call."""
    factories: Dict[str, str] = {}
    for tree in trees.values():
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    name = _lock_call_name(stmt.value)
                    if name is not None:
                        factories[node.name] = name
    return factories


def analyze_lock_order(root: Optional[Path] = None) -> LockOrderGraph:
    """Run the full static analysis over ``root`` (the engine package)."""
    root = root if root is not None else ENGINE_ROOT
    graph = LockOrderGraph()
    functions: List[_FunctionFacts] = []
    trees: Dict[str, ast.Module] = {}
    for path in sorted(root.rglob("*.py")):
        rel = str(path.relative_to(root.parent))
        trees[rel] = ast.parse(path.read_text(), filename=rel)
    # Pass 0: lock factories need global visibility before site resolution.
    factories = _collect_factories(trees)
    for rel, tree in trees.items():
        _ModuleScanner(rel, factories, graph, functions).scan(tree)

    by_bare: Dict[str, List[_FunctionFacts]] = {}
    by_class_method: Dict[Tuple[str, str], List[_FunctionFacts]] = {}
    for facts in functions:
        by_bare.setdefault(facts.bare_name, []).append(facts)
        if facts.class_name is not None:
            by_class_method.setdefault(
                (facts.class_name, facts.bare_name), []
            ).append(facts)

    def callees(facts: _FunctionFacts, name: str, is_self: bool) -> List[_FunctionFacts]:
        if is_self and facts.class_name is not None:
            bound = by_class_method.get((facts.class_name, name))
            if bound:
                return bound
        # A method never resolves to itself through a foreign receiver —
        # this is what keeps e.g. CompositorHost.invalidate calling
        # layer.invalidate() from fabricating a tree->tree self-cycle.
        return [f for f in by_bare.get(name, ()) if f is not facts]

    # Fixpoint: may-acquire sets close over the call graph.
    may_acquire: Dict[str, Set[str]] = {
        facts.qualname: set(facts.direct_locks) for facts in functions
    }
    changed = True
    while changed:
        changed = False
        for facts in functions:
            acquired = may_acquire[facts.qualname]
            before = len(acquired)
            for _held, name, is_self, _line in facts.calls:
                for callee in callees(facts, name, is_self):
                    acquired |= may_acquire[callee.qualname]
            if len(acquired) != before:
                changed = True

    # Interprocedural edges: calls under held locks pull in everything the
    # callee may acquire.
    for facts in functions:
        for held, name, is_self, line in facts.calls:
            if not held:
                continue
            for callee in callees(facts, name, is_self):
                for lock in may_acquire[callee.qualname]:
                    witness = (
                        f"{facts.file}:{line} in {facts.qualname} "
                        f"-> {callee.qualname}"
                    )
                    for h in held:
                        graph.add_edge(h, lock, witness)
    return graph


# ---------------------------------------------------------------------- #
# Dynamic observed orders                                                 #
# ---------------------------------------------------------------------- #


@dataclass
class ObservedOrders:
    """Lock orders actually exercised by one trace."""

    #: (held name, acquired name) -> occurrence count
    edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    locks: Set[str] = field(default_factory=set)
    acquires: int = 0
    releases: int = 0

    def to_json(self) -> dict:
        return {
            "locks": sorted(self.locks),
            "acquires": self.acquires,
            "releases": self.releases,
            "edges": [
                {"held": a, "acquired": b, "count": n}
                for (a, b), n in sorted(self.edges.items())
            ],
        }


def observed_orders(
    store: TraceStore, cell_names: Optional[CellNamer] = None
) -> ObservedOrders:
    """Replay lock events in ``store``; collect held->acquired pairs."""
    observed = ObservedOrders()
    held: Dict[int, List[int]] = {}
    names: Dict[int, str] = {}

    def name_of(cell: int) -> str:
        name = names.get(cell)
        if name is None:
            resolved = cell_names(cell) if cell_names else None
            name = resolved if resolved else f"cell:{cell:#x}"
            names[cell] = name
        return name

    for index, record in enumerate(store.forward()):
        event = sync_event_of(index, record)
        if event is None or event.kind != "lock":
            continue
        stack = held.setdefault(event.tid, [])
        if event.op == SYNC_ACQUIRE:
            observed.acquires += 1
            observed.locks.add(name_of(event.obj))
            for h in stack:
                key = (name_of(h), name_of(event.obj))
                observed.edges[key] = observed.edges.get(key, 0) + 1
            stack.append(event.obj)
        elif event.op == SYNC_RELEASE:
            observed.releases += 1
            if event.obj in stack:
                stack.remove(event.obj)
    return observed


def cross_reference(
    graph: LockOrderGraph, observed: ObservedOrders
) -> Dict[str, List]:
    """Compare observed orders against the static graph.

    Static lock names may be families (``sched:lock:queue:*``), so matching
    is by ``fnmatch`` pattern.  Returns the observed edges the static pass
    did not predict (should be empty: the static analysis over-approximates)
    and the static edges never exercised dynamically.
    """
    static_edges = [
        (a, b) for a, succs in graph.edges.items() for b in succs
    ]

    def predicted(a: str, b: str) -> bool:
        return any(fnmatch(a, p) and fnmatch(b, q) for p, q in static_edges)

    unpredicted = sorted(
        [a, b] for (a, b) in observed.edges if not predicted(a, b)
    )
    exercised: Set[Tuple[str, str]] = set()
    for (a, b) in observed.edges:
        for p, q in static_edges:
            if fnmatch(a, p) and fnmatch(b, q):
                exercised.add((p, q))
    unexercised = sorted(
        [p, q] for (p, q) in static_edges if (p, q) not in exercised
    )
    return {"unpredicted_observed": unpredicted, "unexercised_static": unexercised}
