"""Happens-before data-race detection over recorded traces.

The detector replays a :class:`~repro.trace.store.TraceStore` in program
order, maintaining one vector clock per thread and one per synchronization
object.  Sync events (the marker convention of
:mod:`repro.trace.records`) move clocks:

* ``release(m)``  — ``L_m |_|= C_t``, then ``C_t[t] += 1``;
* ``acquire(m)`` — ``C_t |_|= L_m``.

Every other record's memory accesses are checked against the last write
epoch and the read epochs of each cell: two accesses to the same cell from
different threads, at least one a write, race unless the earlier one's
epoch is covered by the later thread's clock.  Registers are per-thread by
construction and never checked.

This is the dynamic half of the concurrency sanitizer; the static half
(lock-order analysis) lives in :mod:`repro.tsan.lockorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..trace.records import InstrKind, TraceRecord, sync_event_of
from ..trace.store import TraceStore
from .vclock import VectorClock, covers, fresh, join_into

#: resolves a cell address to a human-readable region name (live runs can
#: pass ``cell_namer(engine.ctx.memory)``; saved traces have no names).
CellNamer = Callable[[int], Optional[str]]


@dataclass(frozen=True)
class Access:
    """One side of a racy pair."""

    index: int
    tid: int
    pc: int
    fn: str
    is_write: bool


@dataclass(frozen=True)
class Race:
    """A pair of conflicting accesses unordered by happens-before."""

    cell: int
    cell_name: Optional[str]
    #: "write-write", "read-write" (prior read, racing write) or
    #: "write-read" (prior write, racing read)
    kind: str
    prior: Access
    current: Access

    def describe(self) -> str:
        where = self.cell_name if self.cell_name else f"cell {self.cell:#x}"
        return (
            f"{self.kind} race on {where}: "
            f"#{self.prior.index} tid={self.prior.tid} in {self.prior.fn} vs "
            f"#{self.current.index} tid={self.current.tid} in {self.current.fn}"
        )


@dataclass
class RaceReport:
    """Everything the replay learned about one trace."""

    n_records: int = 0
    n_threads: int = 0
    races: List[Race] = field(default_factory=list)
    #: tid -> sync-edge kind ("lock", "ipc", "plain", ...) -> event count
    sync_events: Dict[int, Dict[str, int]] = field(default_factory=dict)
    n_sync_objects: int = 0
    #: cells with at least one reported race
    racy_cells: Set[int] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.races

    def sync_event_total(self, tid: Optional[int] = None) -> int:
        if tid is not None:
            return sum(self.sync_events.get(tid, {}).values())
        return sum(sum(kinds.values()) for kinds in self.sync_events.values())

    def to_json(self) -> dict:
        return {
            "n_records": self.n_records,
            "n_threads": self.n_threads,
            "n_sync_objects": self.n_sync_objects,
            "ok": self.ok,
            "n_races": len(self.races),
            "racy_cells": sorted(self.racy_cells),
            "sync_events": {
                str(tid): dict(sorted(kinds.items()))
                for tid, kinds in sorted(self.sync_events.items())
            },
            "races": [
                {
                    "cell": race.cell,
                    "cell_name": race.cell_name,
                    "kind": race.kind,
                    "prior": {
                        "index": race.prior.index,
                        "tid": race.prior.tid,
                        "fn": race.prior.fn,
                        "write": race.prior.is_write,
                    },
                    "current": {
                        "index": race.current.index,
                        "tid": race.current.tid,
                        "fn": race.current.fn,
                        "write": race.current.is_write,
                    },
                }
                for race in self.races
            ],
        }


def cell_namer(memory) -> CellNamer:
    """Build a CellNamer from a live :class:`AddressSpace`."""

    def name_of(cell: int) -> Optional[str]:
        try:
            region = memory.find_region(cell)
        except (KeyError, ValueError):
            return None
        if region.size == 1:
            return region.name
        return f"{region.name}[{cell - region.base}]"

    return name_of


class RaceDetector:
    """Single-pass vector-clock replay of one trace."""

    def __init__(
        self,
        store: TraceStore,
        cell_names: Optional[CellNamer] = None,
        max_races: int = 1000,
    ) -> None:
        self.store = store
        self.cell_names = cell_names
        self.max_races = max_races
        self._clocks: Dict[int, VectorClock] = {}
        self._sync_clocks: Dict[int, VectorClock] = {}
        # cell -> (tid, clk, index, pc) of the last write
        self._write_epoch: Dict[int, Tuple[int, int, int, int]] = {}
        # cell -> tid -> (clk, index, pc) of reads since the last write
        self._read_epochs: Dict[int, Dict[int, Tuple[int, int, int]]] = {}
        self._reported: Set[Tuple[int, str, int, int]] = set()
        self.report = RaceReport()

    # ------------------------------------------------------------------ #

    def run(self) -> RaceReport:
        report = self.report
        report.n_records = len(self.store)
        for index, record in enumerate(self.store.forward()):
            self._step(index, record)
        report.n_threads = len(self._clocks)
        report.n_sync_objects = len(self._sync_clocks)
        return report

    # ------------------------------------------------------------------ #

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = fresh(tid)
            self._clocks[tid] = clock
        return clock

    def _step(self, index: int, record: TraceRecord) -> None:
        tid = record.tid
        clock = self._clock(tid)
        event = sync_event_of(index, record)
        if event is not None:
            sync = self._sync_clocks.setdefault(event.obj, {})
            if event.op == "release":
                join_into(sync, clock)
                clock[tid] += 1
            else:
                join_into(clock, sync)
            by_kind = self.report.sync_events.setdefault(tid, {})
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            return
        if record.kind == InstrKind.MARKER and record.marker is not None:
            # Non-sync markers (tile_ready, load_complete) are observation
            # points, not accesses.
            return
        for cell in record.mem_read:
            self._check_read(index, record, clock, cell)
        for cell in record.mem_written:
            self._check_write(index, record, clock, cell)

    def _check_read(
        self, index: int, record: TraceRecord, clock: VectorClock, cell: int
    ) -> None:
        write = self._write_epoch.get(cell)
        if write is not None:
            wtid, wclk, windex, wpc = write
            if wtid != record.tid and not covers(clock, wtid, wclk):
                self._report(
                    cell, "write-read", (windex, wtid, wpc, True), index, record, False
                )
        reads = self._read_epochs.get(cell)
        if reads is None:
            reads = {}
            self._read_epochs[cell] = reads
        reads[record.tid] = (clock[record.tid], index, record.pc)

    def _check_write(
        self, index: int, record: TraceRecord, clock: VectorClock, cell: int
    ) -> None:
        tid = record.tid
        write = self._write_epoch.get(cell)
        if write is not None:
            wtid, wclk, windex, wpc = write
            if wtid != tid and not covers(clock, wtid, wclk):
                self._report(
                    cell, "write-write", (windex, wtid, wpc, True), index, record, True
                )
        reads = self._read_epochs.get(cell)
        if reads:
            for rtid, (rclk, rindex, rpc) in reads.items():
                if rtid != tid and not covers(clock, rtid, rclk):
                    self._report(
                        cell, "read-write", (rindex, rtid, rpc, False), index, record, True
                    )
            reads.clear()
        self._write_epoch[cell] = (tid, clock[tid], index, record.pc)

    def _report(
        self,
        cell: int,
        kind: str,
        prior: Tuple[int, int, int, bool],
        index: int,
        record: TraceRecord,
        current_is_write: bool,
    ) -> None:
        pindex, ptid, ppc, pwrite = prior
        key = (cell, kind, ppc, record.pc)
        if key in self._reported or len(self.report.races) >= self.max_races:
            return
        self._reported.add(key)
        symbols = self.store.symbols
        prior_record = self.store[pindex]
        name = self.cell_names(cell) if self.cell_names else None
        self.report.races.append(
            Race(
                cell=cell,
                cell_name=name,
                kind=kind,
                prior=Access(
                    index=pindex,
                    tid=ptid,
                    pc=ppc,
                    fn=symbols.name(prior_record.fn),
                    is_write=pwrite,
                ),
                current=Access(
                    index=index,
                    tid=record.tid,
                    pc=record.pc,
                    fn=symbols.name(record.fn),
                    is_write=current_is_write,
                ),
            )
        )
        self.report.racy_cells.add(cell)


def detect_races(
    store: TraceStore,
    cell_names: Optional[CellNamer] = None,
    max_races: int = 1000,
) -> RaceReport:
    """Replay ``store`` and return its :class:`RaceReport`."""
    return RaceDetector(store, cell_names=cell_names, max_races=max_races).run()
