"""Vector clocks for happens-before tracking.

Clocks are sparse dicts mapping thread id to a logical timestamp.  A
thread's own component counts its release operations (FastTrack-style
epochs): it is incremented after each release so that accesses performed
*after* publishing are not covered by the published clock.  An absent
component reads as zero, which is never ordered after any real timestamp.
"""

from __future__ import annotations

from typing import Dict

VectorClock = Dict[int, int]


def fresh(tid: int) -> VectorClock:
    """Initial clock of a thread: its own component starts at 1."""
    return {tid: 1}


def join_into(target: VectorClock, other: VectorClock) -> None:
    """In-place component-wise maximum (``target |_| other``)."""
    for tid, clk in other.items():
        if clk > target.get(tid, 0):
            target[tid] = clk


def covers(clock: VectorClock, tid: int, clk: int) -> bool:
    """Does ``clock`` order the epoch ``(tid, clk)`` before the present?"""
    return clk <= clock.get(tid, 0)
