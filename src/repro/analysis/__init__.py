"""Analysis utilities: coverage accounting (Table I), utilization
timelines (Figure 2), and figure/table rendering."""

from .coverage import CoverageRow, coverage_row, coverage_table
from .deferral import DeferralCandidate, DeferralReport, analyze_deferral, render_report
from .energy import EnergyBreakdown, energy_breakdown, render_energy_report
from .figures import figure4_chart, figure4_series, figure5_chart
from .utilization import UtilizationSpike, ascii_chart, busy_fraction, find_spikes

__all__ = [
    "CoverageRow",
    "DeferralCandidate",
    "DeferralReport",
    "analyze_deferral",
    "render_report",
    "EnergyBreakdown",
    "energy_breakdown",
    "render_energy_report",
    "coverage_row",
    "coverage_table",
    "UtilizationSpike",
    "find_spikes",
    "busy_fraction",
    "ascii_chart",
    "figure4_series",
    "figure4_chart",
    "figure5_chart",
]
