"""Figure-series rendering: the backward-pass timelines (Figure 4) and the
category distribution (Figure 5) as text, matching the paper's layout."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..profiler.categorize import CATEGORIES, CategoryDistribution


def figure4_series(
    timeline: Sequence[Tuple[int, float]], points: int = 40
) -> List[Tuple[int, float]]:
    """Downsample a (records processed, cumulative slice fraction) series.

    ``x = 0`` is the end of the trace (page loaded / session done); the
    last point is entering the URL — matching Figure 4's x-axis.
    """
    if not timeline:
        return []
    if len(timeline) <= points:
        return list(timeline)
    step = len(timeline) / points
    sampled = [timeline[int(i * step)] for i in range(points)]
    if sampled[-1] != timeline[-1]:
        sampled.append(timeline[-1])
    return sampled


def figure4_chart(
    timeline: Sequence[Tuple[int, float]],
    title: str,
    width: int = 72,
    height: int = 12,
) -> str:
    """ASCII line chart of slice fraction vs backward-pass progress."""
    points = figure4_series(timeline, points=width)
    rows: List[str] = [title]
    if not points:
        return title + "\n(empty)"
    values = [y for _, y in points]
    for level in range(height, 0, -1):
        cut = level / height
        prev_cut = (level - 1) / height
        row = "".join(
            "*" if prev_cut <= v < cut or (level == height and v >= cut) else " "
            for v in values
        )
        rows.append(f"{cut:4.0%} |{row}")
    rows.append("      +" + "-" * len(values))
    rows.append("      x=0 (end of trace) " + " " * max(0, len(values) - 44) + "-> URL entered")
    return "\n".join(rows)


def figure5_chart(
    distributions: Sequence[Tuple[str, CategoryDistribution]], width: int = 40
) -> str:
    """Stacked text rendering of the Figure 5 category distribution."""
    lines = [
        "Figure 5: Categorization of potentially unnecessary computations",
        "(shares of categorized non-slice instructions)",
        "-" * 72,
    ]
    for name, dist in distributions:
        lines.append(f"{name} (categorized: {dist.categorized_fraction:.0%} of unnecessary):")
        for category in CATEGORIES:
            share = dist.share(category)
            bar = "#" * int(round(share * width))
            lines.append(f"  {category:<16s} {share:6.1%} {bar}")
        lines.append("")
    return "\n".join(lines)
