"""Unused JS/CSS byte accounting (regenerates Table I).

The paper measures, per website, the JavaScript and CSS bytes that were
downloaded but never used — after load only, and after load plus ~30s of
typical browsing — finding 40-60% unused.  Our equivalent combines the
mini-JS engine's byte coverage (function bodies count as used only when
called) with the CSS engine's rule-match accounting (a rule's bytes count
as used once it matches any element).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids circular import)
    from ..harness.experiments import ExperimentResult


@dataclass(frozen=True)
class CoverageRow:
    """One (site, condition) cell group of Table I."""

    site: str
    condition: str  # "Only Load" | "Load and Browse"
    unused_bytes: int
    total_bytes: int

    @property
    def unused_fraction(self) -> float:
        return self.unused_bytes / self.total_bytes if self.total_bytes else 0.0

    def formatted(self) -> str:
        return (
            f"{self.site:>12s} | {self.condition:<15s} | "
            f"unused {_human(self.unused_bytes):>8s} | total {_human(self.total_bytes):>8s} | "
            f"{self.unused_fraction:.0%}"
        )


def _human(n: int) -> str:
    if n >= 1_000_000:
        return f"{n / 1_000_000:.1f} MB"
    if n >= 1_000:
        return f"{n / 1_000:.1f} KB"
    return f"{n} B"


def coverage_row(result: "ExperimentResult", site: str, condition: str) -> CoverageRow:
    """Build one Table I row group from an experiment result."""
    return CoverageRow(
        site=site,
        condition=condition,
        unused_bytes=result.code_unused_bytes(),
        total_bytes=result.code_total_bytes(),
    )


def coverage_table(rows: List[CoverageRow]) -> str:
    """Render rows in Table I's layout."""
    lines = ["Table I: Unused JavaScript and CSS code bytes."]
    lines.append("-" * 72)
    for row in rows:
        lines.append(row.formatted())
    return "\n".join(lines)
