"""Main-thread CPU utilization timelines (regenerates Figure 2).

Figure 2 plots the CPU utilization of the tab process's main thread over
a short amazon.com session: a large spike while the page loads, then
smaller spikes at each user interaction (scrolls, photo-roll clicks, a
menu open).  The virtual clock's per-bucket busy accounting provides the
series directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class UtilizationSpike:
    """A contiguous above-threshold region of the utilization series."""

    start_s: float
    end_s: float
    peak: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def find_spikes(
    series: Sequence[Tuple[float, float]], threshold: float = 0.15
) -> List[UtilizationSpike]:
    """Detect activity spikes (load + interactions) in a utilization series."""
    spikes: List[UtilizationSpike] = []
    start = None
    peak = 0.0
    last_t = 0.0
    for t, value in series:
        last_t = t
        if value >= threshold:
            if start is None:
                start = t
                peak = value
            else:
                peak = max(peak, value)
        elif start is not None:
            spikes.append(UtilizationSpike(start_s=start, end_s=t, peak=peak))
            start = None
    if start is not None:
        spikes.append(UtilizationSpike(start_s=start, end_s=last_t, peak=peak))
    return spikes


def busy_fraction(series: Sequence[Tuple[float, float]]) -> float:
    """Overall mean utilization across the session."""
    if not series:
        return 0.0
    return sum(v for _, v in series) / len(series)


def ascii_chart(
    series: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 10,
    title: str = "CPU utilization (main thread)",
) -> str:
    """Render a utilization series as an ASCII area chart."""
    if not series:
        return title + "\n(empty series)"
    # Downsample to `width` columns by max-pooling (spikes must survive).
    values = [v for _, v in series]
    columns: List[float] = []
    n = len(values)
    for c in range(width):
        lo = c * n // width
        hi = max(lo + 1, (c + 1) * n // width)
        columns.append(max(values[lo:hi]))
    rows: List[str] = [title]
    for level in range(height, 0, -1):
        cut = level / height
        row = "".join("#" if col >= cut else " " for col in columns)
        label = f"{cut:4.0%} |"
        rows.append(label + row)
    rows.append("      +" + "-" * width)
    t_end = series[-1][0]
    rows.append(f"      0s{' ' * (width - 10)}{t_end:.1f}s")
    return "\n".join(rows)
