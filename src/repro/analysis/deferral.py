"""Deferral-opportunity analysis (the paper's optimization implication).

The paper concludes that unnecessary computations "are either completely
wasted or could be deferred to a later time, i.e., when they are actually
needed, thereby providing higher performance and better energy
efficiency."  This module quantifies that opportunity from a profiled run:

* per-function load-phase waste (instructions executed before
  load-complete that never joined the pixel slice);
* the hypothetical load-time reduction if that work moved off the load
  path;
* per-script code-splitting candidates from byte coverage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness.experiments import ExperimentResult


@dataclass(frozen=True)
class DeferralCandidate:
    """One function's load-phase deferral opportunity."""

    function: str
    executed_at_load: int
    wasted_at_load: int

    @property
    def waste_fraction(self) -> float:
        if not self.executed_at_load:
            return 0.0
        return self.wasted_at_load / self.executed_at_load


@dataclass
class DeferralReport:
    """Aggregate deferral opportunity of one profiled session."""

    load_instructions: int
    load_slice_instructions: int
    candidates: List[DeferralCandidate]
    #: (script name, unused bytes, total bytes) code-splitting candidates
    unused_scripts: List[Tuple[str, int, int]]

    @property
    def load_waste_instructions(self) -> int:
        return self.load_instructions - self.load_slice_instructions

    @property
    def hypothetical_load_reduction(self) -> float:
        """Load-time fraction removable by perfect deferral of the waste."""
        if not self.load_instructions:
            return 0.0
        return self.load_waste_instructions / self.load_instructions

    def top_candidates(self, limit: int = 10, min_waste: int = 10) -> List[DeferralCandidate]:
        eligible = [c for c in self.candidates if c.wasted_at_load >= min_waste]
        return eligible[:limit]


def analyze_deferral(
    result: "ExperimentResult", prefix_filter: Optional[str] = None
) -> DeferralReport:
    """Build a :class:`DeferralReport` from a profiled benchmark run.

    ``prefix_filter`` restricts per-function candidates to a function-name
    prefix (e.g. ``"v8::"`` for JavaScript-only deferral, the paper's main
    suggestion).
    """
    store = result.store
    flags = result.pixel.flags
    load_end = store.metadata.load_complete_index
    if load_end is None:
        load_end = len(store)

    executed: Counter = Counter()
    wasted: Counter = Counter()
    load_slice = 0
    for i, rec in enumerate(store.forward()):
        if i > load_end:
            break
        name = store.symbols.name(rec.fn)
        if prefix_filter is not None and not name.startswith(prefix_filter):
            if flags[i]:
                load_slice += 1
            continue
        executed[name] += 1
        if flags[i]:
            load_slice += 1
        else:
            wasted[name] += 1

    candidates = sorted(
        (
            DeferralCandidate(
                function=name,
                executed_at_load=executed[name],
                wasted_at_load=wasted.get(name, 0),
            )
            for name in executed
        ),
        key=lambda c: -c.wasted_at_load,
    )

    unused_scripts = [
        (script.name, script.unused_bytes(), script.total_bytes)
        for script in result.js_coverage().scripts()
        if script.total_bytes
    ]
    unused_scripts.sort(key=lambda row: -row[1])

    return DeferralReport(
        load_instructions=min(load_end + 1, len(store)),
        load_slice_instructions=load_slice,
        candidates=candidates,
        unused_scripts=unused_scripts,
    )


def render_report(report: DeferralReport, limit: int = 12) -> str:
    """Human-readable deferral report."""
    lines = [
        "Deferral opportunity report",
        "=" * 60,
        f"load-phase instructions:        {report.load_instructions}",
        f"  useful for displayed pixels:  {report.load_slice_instructions}",
        f"  wasted / deferrable:          {report.load_waste_instructions} "
        f"({report.hypothetical_load_reduction:.0%} of load)",
        "",
        "top per-function candidates:",
    ]
    for candidate in report.top_candidates(limit):
        lines.append(
            f"  {candidate.wasted_at_load:>7d} wasted "
            f"({candidate.waste_fraction:>4.0%} of {candidate.executed_at_load}) "
            f"{candidate.function}"
        )
    lines.append("")
    lines.append("code-splitting candidates (unused bytes per script):")
    for name, unused, total in report.unused_scripts[:limit]:
        lines.append(f"  {unused:>7d} / {total:>7d} bytes  {name}")
    return "\n".join(lines)
