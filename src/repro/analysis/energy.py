"""A first-order energy model of the profiled session.

The paper motivates the characterization with energy efficiency: avoiding
or deferring unnecessary computations "provid[es] higher performance or
reduced energy consumption", and its related work schedules browser work
on big.LITTLE cores.  This module puts rough numbers on that:

* wasted dynamic energy = non-slice instructions x per-instruction energy
  on the big core;
* a big.LITTLE what-if: energy if all *deferrable* (non-slice) work were
  run on a LITTLE core instead (the eQoS/GreenWeb-style scheduling the
  paper cites).

The constants are deliberately simple, order-of-magnitude figures
(documented below); the value is in the *relative* numbers per thread and
per category, which derive entirely from the slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..profiler.categorize import CATEGORIES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness.experiments import ExperimentResult

#: energy per (scaled) trace record on a big out-of-order core, in
#: microjoules. One record stands for ~10^4 instructions at ~100 pJ per
#: instruction -> ~1 uJ.
BIG_CORE_UJ_PER_RECORD = 1.0

#: LITTLE cores run the same work ~3x slower at ~5x less power.
LITTLE_CORE_UJ_PER_RECORD = BIG_CORE_UJ_PER_RECORD * 3.0 / 5.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy accounting of one profiled session (microjoules)."""

    total_uj: float
    useful_uj: float
    wasted_uj: float
    #: category -> wasted energy, for categorized non-slice instructions
    wasted_by_category: Dict[str, float]
    #: per-thread (name, total uJ, wasted uJ)
    threads: List[Tuple[str, float, float]]

    @property
    def wasted_fraction(self) -> float:
        return self.wasted_uj / self.total_uj if self.total_uj else 0.0

    def little_core_savings_uj(self) -> float:
        """Energy saved by running all non-slice work on a LITTLE core."""
        per_record_saving = BIG_CORE_UJ_PER_RECORD - LITTLE_CORE_UJ_PER_RECORD
        return self.wasted_uj / BIG_CORE_UJ_PER_RECORD * per_record_saving

    def elimination_savings_uj(self) -> float:
        """Energy saved by not executing the wasted work at all."""
        return self.wasted_uj


def energy_breakdown(result: "ExperimentResult") -> EnergyBreakdown:
    """Compute the energy split from a profiled benchmark run."""
    store = result.store
    flags = result.pixel.flags
    total = len(store)
    useful = result.pixel.slice_size()
    wasted = total - useful

    per_thread: Dict[int, Tuple[int, int]] = {}
    for i, rec in enumerate(store.forward()):
        t_total, t_wasted = per_thread.get(rec.tid, (0, 0))
        per_thread[rec.tid] = (t_total + 1, t_wasted + (0 if flags[i] else 1))

    names = store.metadata.thread_names
    threads = [
        (
            names.get(tid, f"thread-{tid}"),
            t_total * BIG_CORE_UJ_PER_RECORD,
            t_wasted * BIG_CORE_UJ_PER_RECORD,
        )
        for tid, (t_total, t_wasted) in sorted(per_thread.items())
    ]

    wasted_by_category = {
        category: result.categories.counts.get(category, 0) * BIG_CORE_UJ_PER_RECORD
        for category in CATEGORIES
    }

    return EnergyBreakdown(
        total_uj=total * BIG_CORE_UJ_PER_RECORD,
        useful_uj=useful * BIG_CORE_UJ_PER_RECORD,
        wasted_uj=wasted * BIG_CORE_UJ_PER_RECORD,
        wasted_by_category=wasted_by_category,
        threads=threads,
    )


def render_energy_report(breakdown: EnergyBreakdown) -> str:
    """Human-readable energy report."""
    lines = [
        "Energy report (first-order model, scaled units)",
        "=" * 60,
        f"total dynamic energy:   {breakdown.total_uj:>10.0f} uJ",
        f"  pixel-useful:         {breakdown.useful_uj:>10.0f} uJ",
        f"  wasted / deferrable:  {breakdown.wasted_uj:>10.0f} uJ "
        f"({breakdown.wasted_fraction:.0%})",
        "",
        f"if eliminated outright:      save {breakdown.elimination_savings_uj():>8.0f} uJ",
        f"if moved to a LITTLE core:   save {breakdown.little_core_savings_uj():>8.0f} uJ",
        "",
        "wasted energy by category:",
    ]
    for category, uj in sorted(
        breakdown.wasted_by_category.items(), key=lambda kv: -kv[1]
    ):
        if uj > 0:
            lines.append(f"  {category:<16s} {uj:>10.0f} uJ")
    lines.append("")
    lines.append("per thread (total / wasted):")
    for name, total_uj, wasted_uj in breakdown.threads:
        lines.append(f"  {name:<28s} {total_uj:>8.0f} / {wasted_uj:>8.0f} uJ")
    return "\n".join(lines)
