"""Control-flow graph construction over the mini-JS statement AST.

One :class:`CFG` per function body (or script top level).  Blocks hold
:class:`Item` entries — either simple statements or the evaluated parts of
compound statements (an ``if`` test, a ``for`` update, a ``switch``
discriminant), so every expression evaluation belongs to exactly one block
and dataflow sees uses/defs in evaluation order.

Branches on *literal* conditions are folded: ``if (false) {...}`` gets no
edge into its consequent, which is how statically-unreachable statements
fall out of plain graph reachability.  Exception edges are factored
conservatively: every block inside a ``try`` gets an edge to the handler,
so a partial execution of the protected region never invalidates a
dataflow fact observed in the catch block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from ..browser.js import ast

#: roles an Item can play inside its block
ROLE_STMT = "stmt"
ROLE_TEST = "test"
ROLE_ITER = "iter"


def js_literal_truthy(value: object) -> bool:
    """Truthiness of a literal value (mirrors ``js_truthy`` for literals)."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and value == value  # NaN is falsy
    if isinstance(value, str):
        return len(value) > 0
    return True


def iter_child_nodes(node: object) -> Iterator[ast.JSNode]:
    """Direct AST-node children of ``node`` (lists/tuples flattened)."""
    if not isinstance(node, ast.JSNode):
        return
    for value in vars(node).values():
        if isinstance(value, ast.JSNode):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.JSNode):
                    yield item
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, ast.JSNode):
                            yield sub


def walk_expressions(node: ast.JSNode) -> Iterator[ast.JSNode]:
    """Depth-first walk of an expression tree, not descending into
    nested function bodies (those belong to other CFGs)."""
    yield node
    if isinstance(node, ast.FunctionExpr):
        return
    for child in iter_child_nodes(node):
        yield from walk_expressions(child)


@dataclass
class Item:
    """One evaluated unit inside a basic block."""

    node: ast.JSNode
    role: str = ROLE_STMT
    #: statement this item belongs to (the compound head for tests/updates)
    stmt: Optional[ast.JSNode] = None

    def owner(self) -> ast.JSNode:
        return self.stmt if self.stmt is not None else self.node


@dataclass
class BasicBlock:
    bid: int
    items: List[Item] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


class CFG:
    """A function's control-flow graph.  Block 0 is the entry."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block().bid
        self.exit = self.new_block().bid

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def reachable_blocks(self) -> Set[int]:
        """Blocks reachable from the entry (the exit is not implicitly so)."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return seen

    def items(self) -> Iterator[Tuple[int, Item]]:
        for block in self.blocks:
            for item in block.items:
                yield block.bid, item


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.current = self.cfg.entry
        self.break_targets: List[int] = []
        self.continue_targets: List[int] = []
        #: innermost enclosing catch-handler block, if any
        self.handler_targets: List[int] = []
        #: blocks created while inside each active try body
        self.try_blocks: List[List[int]] = []

    # -- plumbing ------------------------------------------------------- #

    def _new(self) -> int:
        bid = self.cfg.new_block().bid
        for scope in self.try_blocks:
            scope.append(bid)
        return bid

    def _append(self, node: ast.JSNode, role: str = ROLE_STMT,
                stmt: Optional[ast.JSNode] = None) -> None:
        self.cfg.blocks[self.current].items.append(Item(node, role, stmt))

    def _goto_new(self, *preds: int) -> int:
        bid = self._new()
        for pred in preds:
            self.cfg.edge(pred, bid)
        self.current = bid
        return bid

    def _terminate(self, target: Optional[int]) -> None:
        """End the current block with a jump; open an unreachable successor."""
        if target is not None:
            self.cfg.edge(self.current, target)
        self.current = self._new()  # deliberately no incoming edge

    # -- statements ----------------------------------------------------- #

    def build_body(self, body: List[ast.JSNode]) -> None:
        for stmt in body:
            self.build_stmt(stmt)

    def build_stmt(self, node: ast.JSNode) -> None:
        cfg = self.cfg
        if isinstance(node, (ast.VarDecl, ast.FunctionDecl, ast.ExpressionStmt)):
            self._append(node)
        elif isinstance(node, ast.ReturnStmt):
            self._append(node)
            self._terminate(cfg.exit)
        elif isinstance(node, ast.ThrowStmt):
            self._append(node)
            target = self.handler_targets[-1] if self.handler_targets else cfg.exit
            self._terminate(target)
        elif isinstance(node, ast.BreakStmt):
            self._append(node)
            self._terminate(self.break_targets[-1] if self.break_targets else cfg.exit)
        elif isinstance(node, ast.ContinueStmt):
            self._append(node)
            self._terminate(
                self.continue_targets[-1] if self.continue_targets else cfg.exit
            )
        elif isinstance(node, ast.IfStmt):
            self._build_if(node)
        elif isinstance(node, ast.WhileStmt):
            self._build_while(node)
        elif isinstance(node, ast.DoWhileStmt):
            self._build_do_while(node)
        elif isinstance(node, ast.ForStmt):
            self._build_for(node)
        elif isinstance(node, ast.ForInStmt):
            self._build_for_in(node)
        elif isinstance(node, ast.SwitchStmt):
            self._build_switch(node)
        elif isinstance(node, ast.TryStmt):
            self._build_try(node)
        else:  # future statement kinds: treat as an opaque simple statement
            self._append(node)

    def _const_test(self, test: ast.JSNode) -> Optional[bool]:
        if isinstance(test, ast.Literal):
            return js_literal_truthy(test.value)
        return None

    def _build_if(self, node: ast.IfStmt) -> None:
        self._append(node.test, ROLE_TEST, node)
        const = self._const_test(node.test)
        test_block = self.current
        join = self._new()

        # Both branch bodies are always *built* so a constant-false branch's
        # statements land in edge-less blocks and report as unreachable;
        # only the edge from the test is conditional on the folded constant.
        for taken, body in ((True, node.consequent), (False, node.alternate)):
            branch = self._new()
            if const is None or const is taken:
                self.cfg.edge(test_block, branch)
            self.current = branch
            self.build_body(body)
            self.cfg.edge(self.current, join)
        self.current = join

    def _build_while(self, node: ast.WhileStmt) -> None:
        head = self._goto_new(self.current)
        self._append(node.test, ROLE_TEST, node)
        const = self._const_test(node.test)
        after = self._new()
        if const is not True:
            self.cfg.edge(head, after)
        body = self._new()
        if const is not False:
            self.cfg.edge(head, body)
        self.current = body
        self.break_targets.append(after)
        self.continue_targets.append(head)
        self.build_body(node.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.cfg.edge(self.current, head)
        self.current = after

    def _build_do_while(self, node: ast.DoWhileStmt) -> None:
        body = self._goto_new(self.current)
        after = self._new()
        tail = self._new()
        self.current = body
        self.break_targets.append(after)
        self.continue_targets.append(tail)
        self.build_body(node.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.cfg.edge(self.current, tail)
        self.current = tail
        self._append(node.test, ROLE_TEST, node)
        const = self._const_test(node.test)
        if const is not False:
            self.cfg.edge(tail, body)
        if const is not True:
            self.cfg.edge(tail, after)
        self.current = after

    def _build_for(self, node: ast.ForStmt) -> None:
        if node.init is not None:
            self._append(node.init, ROLE_STMT, node)
        head = self._goto_new(self.current)
        const: Optional[bool] = True  # a missing test never exits the loop
        if node.test is not None:
            self._append(node.test, ROLE_TEST, node)
            const = self._const_test(node.test)
        after = self._new()
        update = self._new()
        if const is not True:
            self.cfg.edge(head, after)
        body = self._new()
        if const is not False:
            self.cfg.edge(head, body)
        self.current = body
        self.break_targets.append(after)
        self.continue_targets.append(update)
        self.build_body(node.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.cfg.edge(self.current, update)
        self.current = update
        if node.update is not None:
            self._append(node.update, ROLE_STMT, node)
        self.cfg.edge(update, head)
        self.current = after

    def _build_for_in(self, node: ast.ForInStmt) -> None:
        self._append(node.obj, ROLE_STMT, node)
        head = self._goto_new(self.current)
        # The loop variable binding happens once per key.
        after = self._new()
        body = self._new()
        self.cfg.edge(head, after)  # the object may have no keys
        self.cfg.edge(head, body)
        self.current = body
        self._append(node, ROLE_ITER, node)  # binds node.name each iteration
        self.break_targets.append(after)
        self.continue_targets.append(head)
        self.build_body(node.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.cfg.edge(self.current, head)
        self.current = after

    def _build_switch(self, node: ast.SwitchStmt) -> None:
        self._append(node.discriminant, ROLE_TEST, node)
        dispatch = self.current
        after = self._new()
        self.break_targets.append(after)

        # One test block per non-default case, chained; one body block per
        # case with fallthrough edges between consecutive bodies.
        body_entries: List[int] = []
        for test, _body in node.cases:
            if test is not None:
                test_block = self._goto_new(dispatch)
                self._append(test, ROLE_TEST, node)
                dispatch = test_block
            body_entries.append(self._new())
            self.cfg.edge(dispatch, body_entries[-1])

        has_default = any(test is None for test, _ in node.cases)
        if not has_default:
            self.cfg.edge(dispatch, after)

        prev_exit: Optional[int] = None
        for (test, body), entry in zip(node.cases, body_entries):
            if prev_exit is not None:
                self.cfg.edge(prev_exit, entry)  # fallthrough
            self.current = entry
            self.build_body(body)
            prev_exit = self.current
        if prev_exit is not None:
            self.cfg.edge(prev_exit, after)

        self.break_targets.pop()
        self.current = after

    def _build_try(self, node: ast.TryStmt) -> None:
        has_catch = node.param is not None or bool(node.handler)
        entry = self.current
        handler_block = self._new() if has_catch else None

        try_entry = self._goto_new(entry)
        if handler_block is not None:
            self.handler_targets.append(handler_block)
        self.try_blocks.append([try_entry])
        self.build_body(node.block)
        try_scope = self.try_blocks.pop()
        if handler_block is not None:
            self.handler_targets.pop()
        try_exit = self.current

        after = self._new()
        self.cfg.edge(try_exit, after)

        handler_scope: List[int] = []
        if handler_block is not None:
            # An exception can surface from any point in the protected
            # region: factor an edge from every try block to the handler.
            for bid in try_scope:
                self.cfg.edge(bid, handler_block)
            self.current = handler_block
            handler_scope.append(handler_block)
            self.try_blocks.append(handler_scope)
            self._append(node, ROLE_ITER, node)  # binds the catch parameter
            self.build_body(node.handler)
            self.try_blocks.pop()
            self.cfg.edge(self.current, after)

        if node.finally_body:
            # ``finally`` also runs on the exceptional paths we do not model
            # as explicit rethrow chains; factoring an edge from every
            # protected block into the finally-carrying join block keeps
            # the dataflow conservative.
            for bid in try_scope + handler_scope:
                self.cfg.edge(bid, after)
        self.current = after
        if node.finally_body:
            self.build_body(node.finally_body)


def build_cfg(body: List[ast.JSNode]) -> CFG:
    """Build the CFG of a statement list (function body or script top level)."""
    builder = _Builder()
    builder.build_body(body)
    builder.cfg.edge(builder.current, builder.cfg.exit)
    return builder.cfg


def unreachable_statements(cfg: CFG) -> List[ast.JSNode]:
    """Statements whose evaluation site is unreachable from the entry.

    Returns the owning statement node of every item in an unreachable
    block, deduplicated in first-seen order.  Sound given the builder's
    conservative edges: a reported statement can never execute.
    """
    reachable = cfg.reachable_blocks()
    live_owners: Set[int] = set()
    for block in cfg.blocks:
        if block.bid in reachable:
            for item in block.items:
                live_owners.add(item.owner().node_id)
    seen: Set[int] = set()
    dead: List[ast.JSNode] = []
    for block in cfg.blocks:
        if block.bid in reachable:
            continue
        for item in block.items:
            owner = item.owner()
            # A compound statement with reachable parts (e.g. a for-loop
            # whose init/test run but whose body cannot) is reported at the
            # granularity of the dead part, not the whole statement.
            node = item.node if owner.node_id in live_owners else owner
            if node.node_id not in seen:
                seen.add(node.node_id)
                dead.append(node)
    return dead
