"""Static dead-code analysis over the mini-JS engine's AST.

The dynamic side of this repository (byte coverage + pixel slicing)
*observes* unnecessary JavaScript; this package *predicts* it without
running anything, the way Lacuna/Muzeel-style tools attack web bloat
statically.  The pipeline:

* :mod:`.cfg` — per-function control-flow graphs (basic blocks over the
  statement AST, with literal-constant branch folding);
* :mod:`.dataflow` — intraprocedural reaching definitions, liveness, and
  dead-store detection over those CFGs;
* :mod:`.callgraph` — a page-level call graph whose edges model not just
  direct calls but DOM/event-handler registration (``addEventListener``),
  timers (``setTimeout`` / ``requestAnimationFrame``), array-method
  callbacks, name aliasing, and value escape, so handlers are never
  falsely dead;
* :mod:`.analyzer` — unreachable-function and unreachable-statement
  detection plus statically-dead byte accounting for a whole page;
* :mod:`.compare` — cross-validation against the *dynamic* ground truth
  (``repro.browser.js.coverage`` + the pixel slice): per-workload
  precision/recall of the static "dead" verdicts.

The analyzer is deliberately conservative ("sound"): a function it calls
dead must never execute under any event sequence the engine can deliver.
``python -m repro.jsstatic report`` quantifies the price of that
conservatism per bundled workload.
"""

from .analyzer import PageAnalysis, analyze_page
from .callgraph import CallGraph, EdgeKind, FunctionInfo, build_call_graph
from .cfg import CFG, build_cfg
from .compare import WorkloadComparison, compare_benchmark, comparison_report
from .dataflow import DataflowResult, analyze_dataflow

__all__ = [
    "CFG",
    "build_cfg",
    "DataflowResult",
    "analyze_dataflow",
    "CallGraph",
    "EdgeKind",
    "FunctionInfo",
    "build_call_graph",
    "PageAnalysis",
    "analyze_page",
    "WorkloadComparison",
    "compare_benchmark",
    "comparison_report",
]
