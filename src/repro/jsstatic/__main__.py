"""Static-analysis CLI: analyze workload scripts, cross-validate dynamically.

Usage::

    python -m repro.jsstatic report                # all Table II workloads
    python -m repro.jsstatic report wiki_article bing
    python -m repro.jsstatic report --json bing
    python -m repro.jsstatic analyze amazon_desktop

``report`` runs each workload's full dynamic session (reusing the
harness's per-process cache) and prints the precision/recall table of the
static dead-code verdicts against dynamic coverage; with ``--json`` it
instead emits machine-readable per-function verdicts (script, name,
span, verdict, reason, executed) plus the per-workload aggregates.
``analyze`` prints the raw static findings for one benchmark without
running anything.
"""

from __future__ import annotations

import sys
from typing import List


def _default_names() -> List[str]:
    from ..workloads import TABLE2_BENCHMARKS

    names = ["wiki_article"]
    names.extend(n for n in TABLE2_BENCHMARKS if n not in names)
    return names


def _report(names: List[str], as_json: bool = False) -> int:
    from ..harness.experiments import cached_run
    from .compare import compare_benchmark, comparison_report

    comparisons = []
    for name in names:
        result = cached_run(name)
        comparisons.append(
            compare_benchmark(
                name, engine=result.engine, pixel_fraction=result.stats.fraction
            )
        )
    if as_json:
        import json

        from .compare import function_verdicts

        payload = [
            {
                "benchmark": c.benchmark,
                "n_functions": c.n_functions,
                "n_static_dead": c.n_static_dead,
                "n_dynamic_dead": c.n_dynamic_dead,
                "precision": c.precision,
                "recall": c.recall,
                "sound": c.is_sound,
                "functions": function_verdicts(c),
            }
            for c in comparisons
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(comparison_report(comparisons))
    return 0 if all(c.is_sound for c in comparisons) else 1


def _analyze(name: str) -> int:
    from ..workloads import benchmark
    from .analyzer import analyze_page
    from .compare import benchmark_sources

    analysis = analyze_page(benchmark_sources(benchmark(name)))
    total = analysis.total_bytes()
    dead_bytes = analysis.total_dead_bytes()
    print(f"{name}: {len(analysis.graph.functions)} functions "
          f"across {len(analysis.programs)} scripts")
    print(f"statically dead functions: {len(analysis.dead_functions)} "
          f"({dead_bytes} of {total} bytes)")
    for info in analysis.dead_functions:
        print(f"  dead fn   {info.script}:{info.label()} span={info.span}")
    for url, stmt in analysis.unreachable_stmts():
        print(f"  unreachable stmt {url} span={stmt.span}")
    for label, store in analysis.dead_stores():
        span = store.node.span if store.node is not None else None
        print(f"  dead store {label}: {store.name} span={span}")
    return 0


def main(argv: List[str]) -> int:
    if argv and argv[0] == "report":
        rest = argv[1:]
        as_json = "--json" in rest
        names = [a for a in rest if a != "--json"] or _default_names()
        return _report(names, as_json=as_json)
    if len(argv) >= 2 and argv[0] == "analyze":
        return _analyze(argv[1])
    print(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        sys.exit(0)
