"""Static-analysis CLI: analyze workload scripts, cross-validate dynamically.

Usage::

    python -m repro.jsstatic report                # all Table II workloads
    python -m repro.jsstatic report wiki_article bing
    python -m repro.jsstatic report --json bing
    python -m repro.jsstatic analyze amazon_desktop
    python -m repro.jsstatic callgraph bing
    python -m repro.jsstatic callgraph --json google_maps

``report`` runs each workload's full dynamic session (reusing the
harness's per-process cache) and prints the precision/recall table of the
static dead-code verdicts against dynamic coverage; with ``--json`` it
instead emits machine-readable per-function verdicts (script, name,
span, verdict, reason, executed), per-call-site resolution verdicts from
the value-flow analysis (status resolved/fallback with the flow chain of
every target), plus the per-workload aggregates.
``analyze`` prints the raw static findings for one benchmark without
running anything.
``callgraph`` dumps the page call graph — every edge with its kind
(direct/ref/handler/timer/callback/escape/vflow) and, for value-flow
resolved edges, the flow chain that produced the resolution — without
running anything; ``--json`` emits the same data machine-readably.

Unknown workload names exit with status 2, uniformly with the other CLI
front ends.
"""

from __future__ import annotations

import sys
from typing import Dict, List


def _default_names() -> List[str]:
    from ..workloads import TABLE2_BENCHMARKS

    names = ["wiki_article"]
    names.extend(n for n in TABLE2_BENCHMARKS if n not in names)
    return names


def _validate(names: List[str]) -> int:
    from ..workloads import benchmark_names, unknown_names

    unknown = unknown_names(names)
    if unknown:
        print(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(benchmark_names())}",
            file=sys.stderr,
        )
        return 2
    return 0


def _report(names: List[str], as_json: bool = False) -> int:
    from ..harness.experiments import cached_run
    from .compare import compare_benchmark, comparison_report

    comparisons = []
    for name in names:
        result = cached_run(name)
        comparisons.append(
            compare_benchmark(
                name, engine=result.engine, pixel_fraction=result.stats.fraction
            )
        )
    if as_json:
        import json

        from .compare import call_site_verdicts, function_verdicts

        payload = [
            {
                "benchmark": c.benchmark,
                "n_functions": c.n_functions,
                "n_static_dead": c.n_static_dead,
                "n_dynamic_dead": c.n_dynamic_dead,
                "precision": c.precision,
                "recall": c.recall,
                "sound": c.is_sound,
                "functions": function_verdicts(c),
                "call_sites": call_site_verdicts(c.analysis),
            }
            for c in comparisons
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(comparison_report(comparisons))
    return 0 if all(c.is_sound for c in comparisons) else 1


def _analyze(name: str) -> int:
    from ..workloads import benchmark
    from .analyzer import analyze_page
    from .compare import benchmark_sources

    analysis = analyze_page(benchmark_sources(benchmark(name)))
    total = analysis.total_bytes()
    dead_bytes = analysis.total_dead_bytes()
    print(f"{name}: {len(analysis.graph.functions)} functions "
          f"across {len(analysis.programs)} scripts")
    print(f"statically dead functions: {len(analysis.dead_functions)} "
          f"({dead_bytes} of {total} bytes)")
    for info in analysis.dead_functions:
        print(f"  dead fn   {info.script}:{info.label()} span={info.span}")
    for url, stmt in analysis.unreachable_stmts():
        print(f"  unreachable stmt {url} span={stmt.span}")
    for label, store in analysis.dead_stores():
        span = store.node.span if store.node is not None else None
        print(f"  dead store {label}: {store.name} span={span}")
    return 0


def _callgraph_payload(name: str) -> Dict[str, object]:
    """Edges (with kind + resolution provenance) for one workload."""
    from ..workloads import benchmark
    from .analyzer import analyze_page
    from .callgraph import callgraph_edges
    from .compare import benchmark_sources, call_site_verdicts

    analysis = analyze_page(benchmark_sources(benchmark(name)))
    graph = analysis.graph
    flow = graph.valueflow
    return {
        "benchmark": name,
        "n_functions": len(graph.functions),
        "n_scripts": len(analysis.programs),
        "valueflow": (
            {"ok": flow.ok, "rounds": flow.rounds}
            if flow is not None
            else {"ok": False, "rounds": 0}
        ),
        "liveness": (
            "value-flow resolved"
            if flow is not None and flow.ok
            else "edge fixpoint (fallback)"
        ),
        "edges": callgraph_edges(graph),
        "call_sites": call_site_verdicts(analysis),
    }


def _callgraph(names: List[str], as_json: bool = False) -> int:
    payloads = [_callgraph_payload(name) for name in names]
    if as_json:
        import json

        print(json.dumps(payloads, indent=2))
        return 0
    for i, payload in enumerate(payloads):
        if i:
            print()
        edges = payload["edges"]
        sites = payload["call_sites"]
        assert isinstance(edges, list) and isinstance(sites, list)
        resolved = sum(1 for s in sites if s["status"] == "resolved")
        print(
            f"callgraph {payload['benchmark']}: {payload['n_functions']} "
            f"functions, {len(edges)} edges, liveness via "
            f"{payload['liveness']}"
        )
        print(
            f"call sites: {len(sites)} seen, {resolved} resolved, "
            f"{len(sites) - resolved} fallback"
        )
        for edge in edges:
            prov = f"  [{edge['provenance']}]" if edge.get("provenance") else ""
            print(
                f"  {edge['region']:<40s} --{edge['kind']:>8s}--> "
                f"{edge['target']}{prov}"
            )
    return 0


def main(argv: List[str]) -> int:
    if argv and argv[0] in ("report", "callgraph"):
        rest = argv[1:]
        as_json = "--json" in rest
        names = [a for a in rest if a != "--json"] or _default_names()
        status = _validate(names)
        if status:
            return status
        if argv[0] == "report":
            return _report(names, as_json=as_json)
        return _callgraph(names, as_json=as_json)
    if len(argv) >= 2 and argv[0] == "analyze":
        status = _validate(argv[1:2])
        if status:
            return status
        return _analyze(argv[1])
    print(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        sys.exit(0)
