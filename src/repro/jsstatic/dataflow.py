"""Intraprocedural dataflow over a function's CFG.

Three classic analyses, all at :class:`~repro.jsstatic.cfg.Item`
granularity:

* **reaching definitions** (forward, may) — which stores can supply the
  value a read observes; used for the maybe-undefined diagnostic;
* **liveness** (backward, may) — which variables may still be read;
* **dead-store detection** — a definition of a *local, non-captured*
  variable that no path can ever read again.

Scope rules keep the verdicts sound for the mini-JS engine's semantics
(no ``var`` hoisting; closures share the defining environment):

* only names introduced in the function itself (parameters, ``var``
  declarations, ``for-in`` loop variables, catch parameters) are
  candidates — assignments to outer/global names are externally visible;
* any name that also occurs inside a *nested* function is "captured" and
  excluded entirely, because the closure can read it at any later time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..browser.js import ast
from .cfg import CFG, Item, ROLE_ITER, iter_child_nodes


@dataclass(frozen=True)
class Definition:
    """One store to a named variable."""

    did: int
    name: str
    block: int
    index: int  # item index within the block; -1 for parameter entry defs
    node: Optional[ast.JSNode]  # None for parameter entry definitions
    #: False for ``var x;`` (defines undefined) — excluded from dead-store
    #: reporting but still a definition for reaching purposes
    has_value: bool = True


@dataclass
class ItemFacts:
    """Uses and definitions of one CFG item, in evaluation order."""

    uses: List[str] = field(default_factory=list)
    defs: List[Tuple[str, bool]] = field(default_factory=list)  # (name, has_value)


def _collect(node: ast.JSNode, facts: ItemFacts) -> None:
    """Accumulate uses/defs of an expression/statement subtree.

    Stops at nested :class:`~repro.browser.js.ast.FunctionExpr` boundaries;
    their bodies belong to other CFGs (and make names captured).
    """
    if isinstance(node, ast.FunctionExpr):
        return
    if isinstance(node, ast.Identifier):
        facts.uses.append(node.name)
        return
    if isinstance(node, ast.Assignment):
        _collect(node.value, facts)
        if isinstance(node.target, ast.Identifier):
            if node.op != "=":
                facts.uses.append(node.target.name)
            facts.defs.append((node.target.name, True))
        else:  # member target: object/index are reads, the store is a heap write
            for child in iter_child_nodes(node.target):
                _collect(child, facts)
        return
    if isinstance(node, ast.UpdateExpr):
        if isinstance(node.target, ast.Identifier):
            facts.uses.append(node.target.name)
            facts.defs.append((node.target.name, True))
        else:
            for child in iter_child_nodes(node.target):
                _collect(child, facts)
        return
    if isinstance(node, ast.VarDecl):
        if node.init is not None:
            _collect(node.init, facts)
        facts.defs.append((node.name, node.init is not None))
        return
    if isinstance(node, ast.FunctionDecl):
        facts.defs.append((node.func.name, True))
        return
    for child in iter_child_nodes(node):
        _collect(child, facts)


def item_facts(item: Item) -> ItemFacts:
    facts = ItemFacts()
    if item.role == ROLE_ITER:
        # Binding items carry only their binding, not their subtrees (the
        # iterated object / protected body live in other items).
        if isinstance(item.node, ast.ForInStmt):
            facts.defs.append((item.node.name, True))
        elif isinstance(item.node, ast.TryStmt) and item.node.param is not None:
            facts.defs.append((item.node.param, True))
        return facts
    _collect(item.node, facts)
    return facts


def _nested_function_names(body: List[ast.JSNode]) -> Set[str]:
    """Every name mentioned inside any function nested under ``body``."""
    captured: Set[str] = set()

    def absorb(node: ast.JSNode) -> None:
        """Record every name below ``node``, descending into everything."""
        if isinstance(node, ast.Identifier):
            captured.add(node.name)
        elif isinstance(node, ast.VarDecl):
            captured.add(node.name)
        elif isinstance(node, ast.ForInStmt):
            captured.add(node.name)
        elif isinstance(node, ast.FunctionExpr):
            captured.update(node.params)
        for child in iter_child_nodes(node):
            absorb(child)

    def find(node: ast.JSNode) -> None:
        if isinstance(node, ast.FunctionExpr):
            absorb(node)
            return
        for child in iter_child_nodes(node):
            find(child)

    for stmt in body:
        find(stmt)
    return captured


@dataclass
class DataflowResult:
    """Everything the analyzer derives from one function's dataflow."""

    #: names introduced by the function (params + var/for-in/catch names)
    local_names: Set[str]
    #: names also referenced inside nested functions (excluded from verdicts)
    captured_names: Set[str]
    definitions: List[Definition]
    #: stores to local non-captured variables that no path reads again
    dead_stores: List[Definition]
    #: (name, using node) pairs where a local read may precede every def
    maybe_undefined: List[Tuple[str, ast.JSNode]]
    #: per-block live-in sets (candidate names only)
    live_in: Dict[int, Set[str]]


def analyze_dataflow(cfg: CFG, params: List[str],
                     body: List[ast.JSNode],
                     is_function: bool = True) -> DataflowResult:
    """Run reaching-defs + liveness + dead-store detection on one CFG.

    ``is_function`` is False for script top level, where every name is a
    global (externally visible across scripts) — dead-store and
    maybe-undefined detection are then disabled, though the dataflow is
    still computed for diagnostics.
    """
    facts: Dict[Tuple[int, int], ItemFacts] = {}
    local_names: Set[str] = set(params)
    for block in cfg.blocks:
        for index, item in enumerate(block.items):
            fact = item_facts(item)
            facts[(block.bid, index)] = fact
            for name, _has_value in fact.defs:
                if isinstance(item.node, (ast.VarDecl, ast.ForInStmt)) or (
                    isinstance(item.node, ast.TryStmt) and item.role == ROLE_ITER
                ):
                    local_names.add(name)

    captured = _nested_function_names(body)
    if is_function:
        candidates = {n for n in local_names if n not in captured}
    else:
        candidates = set()

    # ---------------- reaching definitions (forward, may) -------------- #
    definitions: List[Definition] = []
    for param in params:
        definitions.append(
            Definition(len(definitions), param, cfg.entry, -1, None, True)
        )
    # Synthetic "uninitialized" entry definitions for non-parameter locals:
    # a use they reach has at least one path with no real store before it.
    uninit_ids: Set[int] = set()
    for name in sorted(local_names - set(params)):
        d = Definition(len(definitions), name, cfg.entry, -1, None, False)
        definitions.append(d)
        uninit_ids.add(d.did)
    def_ids_by_site: Dict[Tuple[int, int], List[int]] = {}
    defs_by_name: Dict[str, Set[int]] = {}
    for block in cfg.blocks:
        for index, _item in enumerate(block.items):
            ids: List[int] = []
            for name, has_value in facts[(block.bid, index)].defs:
                d = Definition(
                    len(definitions), name, block.bid, index,
                    _item.node, has_value,
                )
                definitions.append(d)
                ids.append(d.did)
            def_ids_by_site[(block.bid, index)] = ids
    for d in definitions:
        defs_by_name.setdefault(d.name, set()).add(d.did)

    reach_in: Dict[int, Set[int]] = {b.bid: set() for b in cfg.blocks}
    reach_in[cfg.entry] = {d.did for d in definitions if d.index == -1}
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.bid == cfg.entry:
                state = set(reach_in[cfg.entry])
            else:
                state = set()
                for pred in block.preds:
                    state |= _block_reach_out(
                        cfg, pred, reach_in[pred], facts, def_ids_by_site,
                        defs_by_name, definitions,
                    )
            if state != reach_in[block.bid] and block.bid != cfg.entry:
                reach_in[block.bid] = state
                changed = True

    maybe_undefined: List[Tuple[str, ast.JSNode]] = []
    if is_function:
        reachable = cfg.reachable_blocks()
        for block in cfg.blocks:
            if block.bid not in reachable:
                continue
            live_defs = set(reach_in[block.bid])
            for index, item in enumerate(block.items):
                fact = facts[(block.bid, index)]
                for name in fact.uses:
                    if name in candidates and any(
                        did in uninit_ids and definitions[did].name == name
                        for did in live_defs
                    ):
                        maybe_undefined.append((name, item.owner()))
                for did in def_ids_by_site[(block.bid, index)]:
                    d = definitions[did]
                    live_defs -= defs_by_name.get(d.name, set())
                    live_defs.add(did)

    # ---------------- liveness (backward, may) -------------------------- #
    use_b: Dict[int, Set[str]] = {}
    def_b: Dict[int, Set[str]] = {}
    for block in cfg.blocks:
        used: Set[str] = set()
        defined: Set[str] = set()
        for index, _item in enumerate(block.items):
            fact = facts[(block.bid, index)]
            for name in fact.uses:
                if name not in defined:
                    used.add(name)
            for name, _hv in fact.defs:
                defined.add(name)
        use_b[block.bid] = used & candidates if candidates else used
        def_b[block.bid] = defined

    live_in: Dict[int, Set[str]] = {b.bid: set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            live_out: Set[str] = set()
            for succ in block.succs:
                live_out |= live_in[succ]
            new_in = use_b[block.bid] | (live_out - def_b[block.bid])
            if new_in != live_in[block.bid]:
                live_in[block.bid] = new_in
                changed = True

    dead_stores: List[Definition] = []
    if is_function:
        reachable = cfg.reachable_blocks()
        for block in cfg.blocks:
            if block.bid not in reachable:
                continue  # unreachable stores are reported as unreachable code
            live: Set[str] = set()
            for succ in block.succs:
                live |= live_in[succ]
            for index in range(len(block.items) - 1, -1, -1):
                fact = facts[(block.bid, index)]
                for did in reversed(def_ids_by_site[(block.bid, index)]):
                    d = definitions[did]
                    if (
                        d.name in candidates
                        and d.has_value
                        and d.name not in live
                        and not isinstance(d.node, ast.FunctionDecl)
                    ):
                        dead_stores.append(d)
                    live.discard(d.name)
                live.update(n for n in fact.uses if n in candidates)

    dead_stores.reverse()
    return DataflowResult(
        local_names=local_names,
        captured_names=captured & local_names,
        definitions=definitions,
        dead_stores=dead_stores,
        maybe_undefined=maybe_undefined,
        live_in=live_in,
    )


def _block_reach_out(
    cfg: CFG,
    bid: int,
    reach_in: Set[int],
    facts: Dict[Tuple[int, int], ItemFacts],
    def_ids_by_site: Dict[Tuple[int, int], List[int]],
    defs_by_name: Dict[str, Set[int]],
    definitions: List[Definition],
) -> Set[int]:
    state = set(reach_in)
    block = cfg.blocks[bid]
    for index in range(len(block.items)):
        for did in def_ids_by_site[(bid, index)]:
            d = definitions[did]
            state -= defs_by_name.get(d.name, set())
            state.add(did)
    return state
