"""Whole-page static analysis: dead functions, unreachable statements,
dead stores, and statically-dead byte accounting.

``analyze_page`` takes the same inputs the engine does — script sources
keyed by URL, in load order — and combines the package's pieces:

* parse every script with the engine's own parser (so spans and function
  boundaries match dynamic coverage exactly);
* build the page call graph and compute dead functions;
* build one CFG per region (script top level + every function body) and
  collect unreachable statements and dead stores;
* mirror :meth:`repro.browser.js.coverage.ScriptCoverage.used_bytes`'s
  merged-span arithmetic to express "statically dead" as source bytes,
  the unit Table I uses for the dynamic side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..browser.js import ast
from ..browser.js.coverage import span_total
from ..browser.js.parser import parse_js
from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .cfg import CFG, build_cfg, unreachable_statements
from .dataflow import DataflowResult, Definition, analyze_dataflow


@dataclass
class RegionReport:
    """Static findings for one region (top level or function body)."""

    script: str
    #: None for a script top level, else the function
    function: "FunctionInfo | None"
    cfg: CFG
    dataflow: DataflowResult
    unreachable: List[ast.JSNode]

    def label(self) -> str:
        if self.function is None:
            return f"{self.script}:<top>"
        return f"{self.script}:{self.function.label()}"


@dataclass
class PageAnalysis:
    """Aggregate static verdicts for one page's scripts."""

    graph: CallGraph
    programs: Dict[str, ast.Program]
    script_bytes: Dict[str, int]
    dead_functions: List[FunctionInfo]
    regions: List[RegionReport] = field(default_factory=list)

    # -- roll-ups --------------------------------------------------------- #

    def unreachable_stmts(self) -> List[Tuple[str, ast.JSNode]]:
        out: List[Tuple[str, ast.JSNode]] = []
        for region in self.regions:
            for stmt in region.unreachable:
                out.append((region.script, stmt))
        return out

    def dead_stores(self) -> List[Tuple[str, Definition]]:
        out: List[Tuple[str, Definition]] = []
        for region in self.regions:
            for store in region.dataflow.dead_stores:
                out.append((region.label(), store))
        return out

    def dead_function_spans(self, script: str) -> List[Tuple[int, int]]:
        return [f.span for f in self.dead_functions if f.script == script]

    def statically_dead_bytes(self, script: str) -> int:
        """Source bytes of ``script`` covered by statically-dead functions.

        Uses the same merged-interval arithmetic as the dynamic
        ``used_bytes`` so the two byte totals are directly comparable.
        A function nested inside a dead one is itself dead (its defining
        region can never run), so a plain merge is exact.
        """
        return span_total(self.dead_function_spans(script))

    def total_dead_bytes(self) -> int:
        return sum(self.statically_dead_bytes(url) for url in self.programs)

    def total_bytes(self) -> int:
        return sum(self.script_bytes.values())


def analyze_page(scripts: Dict[str, str], resolve: bool = True) -> PageAnalysis:
    """Statically analyze a page's scripts (``{url: source}`` in load order).

    ``resolve=False`` skips the interprocedural value-flow analysis and
    reproduces the PR-2 edge-fixpoint liveness (used as the recall
    baseline in benchmarks).
    """
    programs: Dict[str, ast.Program] = {
        url: parse_js(source) for url, source in scripts.items()
    }
    graph = build_call_graph(programs, resolve=resolve)
    live = graph.live_functions()
    dead = [f for f in graph.functions if f.fid not in live]

    # Propagate: a function inside a dead region is dead even if a name
    # edge from elsewhere would resolve to it (its value is never created).
    # live_functions() already handles this by only walking live regions,
    # but name resolution is global, so re-check parents transitively.
    dead_ids: Set[int] = {f.fid for f in dead}
    changed = True
    while changed:
        changed = False
        for info in graph.functions:
            if info.fid in dead_ids:
                continue
            kind, key = info.parent
            if kind == "fn" and int(key) in dead_ids:
                # Defined only inside a function that never runs.  NOTE:
                # this is an *additional* precision step and must stay
                # conservative: the parent being dead means its body never
                # executes, so this function's value is never created.
                dead_ids.add(info.fid)
                changed = True
    dead = [f for f in graph.functions if f.fid in dead_ids]

    analysis = PageAnalysis(
        graph=graph,
        programs=programs,
        script_bytes={url: len(source) for url, source in scripts.items()},
        dead_functions=dead,
    )

    for url, program in programs.items():
        cfg = build_cfg(program.body)
        flow = analyze_dataflow(cfg, [], program.body, is_function=False)
        analysis.regions.append(
            RegionReport(url, None, cfg, flow, unreachable_statements(cfg))
        )
    for info in graph.functions:
        cfg = build_cfg(info.node.body)
        flow = analyze_dataflow(cfg, list(info.node.params), info.node.body)
        analysis.regions.append(
            RegionReport(info.script, info, cfg, flow, unreachable_statements(cfg))
        )
    return analysis
