"""Interprocedural value-flow analysis: function points-to with provenance.

The PR-2 call graph keeps every function alive whose *name* is ever read
(``EdgeKind.REF``) or whose value appears in a non-aliasing position
(``EdgeKind.ESCAPE``).  That over-approximation is sound but caps
dead-function recall on library-heavy pages: a handler stored into a
registry object (``widget_handlers[id] = handler``) escapes even though
the registry is a plain tracked object and the handler is provably never
loaded back out.

This module runs a monotone abstract interpretation over the parsed
scripts instead.  Abstract values are small sets of :class:`Atom`:

* ``fn``  — one function value, tagged with the frame in which its
  closure was created (``fid`` + ``env``);
* ``obj`` — one tracked heap object (allocation-site + calling-context
  keyed), with a property map in an abstract heap;
* ``str`` / ``num`` — single concrete primitives, kept exact so that
  computed property keys and registration ids resolve;
* ``prim`` — any other primitive;
* ``unknown`` — anything the analysis cannot track (DOM handles,
  builtin results, unresolved reads).

Function bodies are analyzed per *cell* — ``(fid, env, argkey)`` where
``argkey`` abstracts each argument to a single str/num/fn atom or ``T``.
That context sensitivity is what distinguishes
``widget_register('w0', fn0)`` from ``widget_register('w2', fn2)``:
each registration stores into its own key of the registry object.

Soundness invariants:

* every state component only grows (value sets, heap, returns,
  invoked/registered/escaped); global rounds re-run every reachable
  cell until nothing changes, so the result is a fixpoint;
* a function value that reaches any position the interpreter does not
  model (unknown callee argument, store through an unknown base, throw,
  callback return) is *escaped*: it is kept live and its body is
  re-analyzed each round with unknown arguments, exactly like the old
  ESCAPE edge;
* any unsupported AST shape, or exhaustion of the step/cell/object
  budgets, aborts the whole analysis (``ok=False``) and the caller
  falls back to the PR-2 edge fixpoint — never a partial result.

Liveness is then simply ``invoked ∪ registered ∪ escaped``, and every
resolved call site carries its target set plus a human-readable flow
chain for the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..browser.js import ast
from .callgraph import CALLBACK_METHODS, TIMER_FUNCTIONS, CallGraph, RegionKey

__all__ = ["Atom", "CallSite", "ValueFlowResult", "resolve_value_flow"]

# -- tuning ------------------------------------------------------------- #

MAX_ROUNDS = 60
MAX_STEPS = 2_000_000
MAX_CELLS = 2_000
MAX_OBJECTS = 5_000
MAX_STR_LEN = 64
MAX_CHAIN = 6


class _Bail(Exception):
    """Raised to abandon the analysis and fall back to the edge fixpoint."""


# -- abstract values ---------------------------------------------------- #


@dataclass(frozen=True)
class Atom:
    """One abstract value.  ``kind`` selects which payload fields apply."""

    kind: str  # "fn" | "obj" | "str" | "num" | "prim" | "unknown"
    fid: int = -1
    env: int = -1
    oid: int = -1
    text: str = ""
    num: float = 0.0


UNKNOWN = Atom("unknown")
PRIM = Atom("prim")


def _fn(fid: int, env: int) -> Atom:
    return Atom("fn", fid=fid, env=env)


def _obj(oid: int) -> Atom:
    return Atom("obj", oid=oid)


def _str(text: str) -> Atom:
    return Atom("str", text=text)


def _num(value: float) -> Atom:
    return Atom("num", num=value)


Atoms = Set[Atom]

#: one element of a cell's argument key: an exact atom or the top "T"
ArgAbstract = Union[Atom, str]
#: ("top", url) | ("fn", fid, env, argkey) | ("event",)
CellKey = Tuple[object, ...]


def _abstract(atoms: Atoms) -> ArgAbstract:
    if len(atoms) == 1:
        atom = next(iter(atoms))
        if atom.kind in ("str", "num", "fn"):
            return atom
    return "T"


def _prop_key(atoms: Atoms) -> Optional[str]:
    """Exact property key from an index value set, or None for unknown."""
    if len(atoms) == 1:
        atom = next(iter(atoms))
        if atom.kind == "str":
            return atom.text
        if atom.kind == "num" and float(atom.num).is_integer():
            return str(int(atom.num))
    return None


# -- call sites ---------------------------------------------------------- #


@dataclass
class CallSite:
    """Resolution verdict for one syntactic call site."""

    node_id: int
    script: str
    region: RegionKey
    span: Tuple[int, int]
    callee: str
    kind: str  # "call" | "method" | "callback" | "new"
    targets: Set[int] = field(default_factory=set)
    incomplete: bool = False
    chains: Dict[int, str] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return "fallback" if self.incomplete else "resolved"


# -- frames and cells ----------------------------------------------------- #


@dataclass
class _Frame:
    parent: int  # frame id, or -1 for the global scope
    names: Set[str]  # locally declared names (params + var/function decls)
    vars: Dict[str, Atoms] = field(default_factory=dict)


@dataclass
class _Cell:
    key: CellKey
    script: str
    region: RegionKey
    frame: int = -1
    body: Sequence[ast.JSNode] = ()
    returns: Atoms = field(default_factory=set)
    round_mark: int = -1
    evaluating: bool = False


# -- result -------------------------------------------------------------- #


@dataclass
class ValueFlowResult:
    ok: bool
    reason: str = ""
    rounds: int = 0
    live_fids: Set[int] = field(default_factory=set)
    invoked_fids: Set[int] = field(default_factory=set)
    registered_fids: Set[int] = field(default_factory=set)
    escaped_fids: Set[int] = field(default_factory=set)
    escape_reasons: Dict[int, str] = field(default_factory=dict)
    #: call-site verdicts keyed by the Call node's node_id
    sites: Dict[int, CallSite] = field(default_factory=dict)
    #: (oid, key) property stores performed by each cell
    cell_stores: Dict[CellKey, Set[Tuple[int, str]]] = field(default_factory=dict)
    #: page-wide property loads: oid -> key -> contexts ("read"|"selfupdate")
    obj_loads: Dict[int, Dict[str, Set[str]]] = field(default_factory=dict)
    #: cells entered from each call site
    site_cells: Dict[int, Set[CellKey]] = field(default_factory=dict)
    #: caller cell -> callee cells
    cell_calls: Dict[CellKey, Set[CellKey]] = field(default_factory=dict)
    #: bare global-name (re)bindings performed by each cell
    cell_gwrites: Dict[CellKey, Set[str]] = field(default_factory=dict)
    escaped_objs: Set[int] = field(default_factory=set)
    #: first global name an object was bound to (provenance labels)
    obj_labels: Dict[int, str] = field(default_factory=dict)

    def transitive_cells(self, node_id: int) -> Set[CellKey]:
        """All cells reachable from the given call site's entry cells."""
        seen: Set[CellKey] = set()
        work = list(self.site_cells.get(node_id, ()))
        while work:
            cell = work.pop()
            if cell in seen:
                continue
            seen.add(cell)
            work.extend(self.cell_calls.get(cell, ()))
        return seen

    def unobservable_store(self, oid: int, key: str) -> Optional[str]:
        """None if a store to ``oid.key`` can never be observed, else why not.

        A store is unobservable when the object never escapes and the
        property is *cold* (never loaded anywhere on the page) or *inert*
        (every load is the read half of a compound self-update such as
        ``obj.key += 1``, whose result flows only back into the same
        property).
        """
        if key == "*":
            return "store key is not statically known"
        if oid in self.escaped_objs:
            return "object escapes the analyzable subset"
        loads = self.obj_loads.get(oid, {})
        if "*" in loads:
            return "object has unknown-key reads"
        contexts = loads.get(key, set())
        if not contexts:
            return None  # cold: never read
        if contexts == {"selfupdate"}:
            return None  # inert: only compound self-updates
        return "property is read elsewhere on the page"

    def label_for(self, oid: int) -> str:
        return self.obj_labels.get(oid, f"<obj#{oid}>")


# -- declared-name walker -------------------------------------------------- #


def _declared_names(body: Sequence[ast.JSNode]) -> Set[str]:
    """var/function/for-in/catch names declared in a function body.

    Walks statement lists only — nested FunctionExprs have their own
    scopes and are not entered.
    """
    names: Set[str] = set()

    def walk(stmts: Sequence[ast.JSNode]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.VarDecl):
                names.add(stmt.name)
            elif isinstance(stmt, ast.FunctionDecl):
                if stmt.func.name:
                    names.add(stmt.func.name)
            elif isinstance(stmt, ast.IfStmt):
                walk(stmt.consequent)
                walk(stmt.alternate)
            elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
                walk(stmt.body)
            elif isinstance(stmt, ast.ForStmt):
                if isinstance(stmt.init, ast.VarDecl):
                    names.add(stmt.init.name)
                walk(stmt.body)
            elif isinstance(stmt, ast.ForInStmt):
                names.add(stmt.name)
                walk(stmt.body)
            elif isinstance(stmt, ast.SwitchStmt):
                for _test, case_body in stmt.cases:
                    walk(case_body)
            elif isinstance(stmt, ast.TryStmt):
                walk(stmt.block)
                if stmt.param:
                    names.add(stmt.param)
                walk(stmt.handler)
                walk(stmt.finally_body)
    walk(body)
    return names


def _hoisted_decls(body: Sequence[ast.JSNode]) -> List[ast.FunctionDecl]:
    """FunctionDecls hoisted to the top of a function/script scope."""
    decls: List[ast.FunctionDecl] = []

    def walk(stmts: Sequence[ast.JSNode]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.FunctionDecl):
                decls.append(stmt)
            elif isinstance(stmt, ast.IfStmt):
                walk(stmt.consequent)
                walk(stmt.alternate)
            elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt,
                                   ast.ForStmt, ast.ForInStmt)):
                walk(stmt.body)
            elif isinstance(stmt, ast.SwitchStmt):
                for _test, case_body in stmt.cases:
                    walk(case_body)
            elif isinstance(stmt, ast.TryStmt):
                walk(stmt.block)
                walk(stmt.handler)
                walk(stmt.finally_body)
    walk(body)
    return decls


# -- the interpreter ------------------------------------------------------- #


class _Interp:
    def __init__(self, graph: CallGraph, programs: Dict[str, ast.Program]) -> None:
        self.graph = graph
        self.programs = programs
        self.fid_by_node: Dict[int, int] = {
            info.node.node_id: info.fid for info in graph.functions
        }
        self.fn_nodes: Dict[int, ast.FunctionExpr] = {
            info.fid: info.node for info in graph.functions
        }
        self.fn_script: Dict[int, str] = {
            info.fid: info.script for info in graph.functions
        }

        self.globals: Dict[str, Atoms] = {}
        self.frames: List[_Frame] = []
        self.cells: Dict[CellKey, _Cell] = {}
        self.heap: Dict[int, Dict[str, Atoms]] = {}
        self.obj_memo: Dict[Tuple[int, CellKey], int] = {}
        self.next_oid = 0

        self.invoked: Set[int] = set()
        self.registered: Set[Atom] = set()
        self.escaped: Set[Atom] = set()
        self.escape_reasons: Dict[int, str] = {}
        self.escaped_objs: Set[int] = set()

        self.sites: Dict[int, CallSite] = {}
        self.cell_stores: Dict[CellKey, Set[Tuple[int, str]]] = {}
        self.obj_loads: Dict[int, Dict[str, Set[str]]] = {}
        self.site_cells: Dict[int, Set[CellKey]] = {}
        self.cell_calls: Dict[CellKey, Set[CellKey]] = {}
        self.cell_gwrites: Dict[CellKey, Set[str]] = {}
        self.obj_labels: Dict[int, str] = {}
        self.flows: Dict[Atom, List[str]] = {}

        self.round = 0
        self.steps = 0
        self.changed = False
        self.event_cell = _Cell(key=("event",), script="<event>",
                                region=("top", "<event>"))

    # -- bookkeeping ------------------------------------------------------ #

    def _step(self) -> None:
        self.steps += 1
        if self.steps > MAX_STEPS:
            raise _Bail("step budget exhausted")

    def _mark(self) -> None:
        self.changed = True

    def _note(self, atom: Atom, note: str) -> None:
        if atom.kind != "fn":
            return
        chain = self.flows.setdefault(atom, [])
        if len(chain) < MAX_CHAIN and note not in chain:
            chain.append(note)

    def _chain_text(self, atom: Atom) -> str:
        return " -> ".join(self.flows.get(atom, [])) or "direct"

    # -- frames ------------------------------------------------------------ #

    def _new_frame(self, parent: int, names: Set[str]) -> int:
        self.frames.append(_Frame(parent=parent, names=names))
        return len(self.frames) - 1

    def _bind(self, frame_id: int, name: str, atoms: Atoms,
              cell: _Cell) -> None:
        """Assign through the scope chain; records global rebinds."""
        fid = frame_id
        while fid != -1:
            frame = self.frames[fid]
            if name in frame.names:
                slot = frame.vars.setdefault(name, set())
                before = len(slot)
                slot |= atoms
                if len(slot) != before:
                    self._mark()
                for atom in atoms:
                    self._note(atom, f"bound to '{name}'")
                return
            fid = frame.parent
        slot = self.globals.setdefault(name, set())
        before = len(slot)
        slot |= atoms
        if len(slot) != before:
            self._mark()
        self.cell_gwrites.setdefault(cell.key, set()).add(name)
        for atom in atoms:
            self._note(atom, f"bound to global '{name}'")
            if atom.kind == "obj" and atom.oid not in self.obj_labels:
                self.obj_labels[atom.oid] = name

    def _lookup(self, frame_id: int, name: str) -> Optional[Atoms]:
        fid = frame_id
        while fid != -1:
            frame = self.frames[fid]
            if name in frame.vars:
                return frame.vars[name]
            if name in frame.names:
                return {PRIM}  # declared but not yet assigned
            fid = frame.parent
        return self.globals.get(name)

    # -- heap -------------------------------------------------------------- #

    def _alloc(self, node: ast.JSNode, cell: _Cell) -> int:
        memo_key = (node.node_id, cell.key)
        oid = self.obj_memo.get(memo_key)
        if oid is None:
            if len(self.heap) >= MAX_OBJECTS:
                raise _Bail("object budget exhausted")
            oid = self.next_oid
            self.next_oid += 1
            self.obj_memo[memo_key] = oid
            self.heap[oid] = {}
            self._mark()
        return oid

    def _escape_obj(self, oid: int) -> None:
        if oid in self.escaped_objs:
            return
        self.escaped_objs.add(oid)
        self._mark()
        for atoms in list(self.heap.get(oid, {}).values()):
            for atom in atoms:
                self._escape(atom, f"stored in escaped object "
                                   f"{self.obj_labels.get(oid, oid)}")

    def _escape(self, atom: Atom, reason: str) -> None:
        if atom.kind == "obj":
            self._escape_obj(atom.oid)
            return
        if atom.kind != "fn":
            return
        if atom not in self.escaped:
            self.escaped.add(atom)
            self.escape_reasons.setdefault(atom.fid, reason)
            self._note(atom, f"escaped: {reason}")
            self._mark()

    def _store(self, oid: int, key: str, atoms: Atoms, cell: _Cell) -> None:
        props = self.heap.setdefault(oid, {})
        slot = props.setdefault(key, set())
        before = len(slot)
        slot |= atoms
        if len(slot) != before:
            self._mark()
        self.cell_stores.setdefault(cell.key, set()).add((oid, key))
        label = self.obj_labels.get(oid, f"<obj#{oid}>")
        for atom in atoms:
            self._note(atom, f"stored at {label}['{key}']")
        if oid in self.escaped_objs:
            for atom in atoms:
                self._escape(atom, f"stored in escaped object {label}")

    def _load(self, oid: int, key: Optional[str], ctx: str) -> Atoms:
        loads = self.obj_loads.setdefault(oid, {})
        loads.setdefault(key if key is not None else "*", set()).add(ctx)
        props = self.heap.get(oid, {})
        out: Atoms = set()
        if key is None:
            for atoms in props.values():
                out |= atoms
            out.add(PRIM)
        else:
            out |= props.get(key, set())
            out |= props.get("*", set())
            if key not in props:
                out.add(PRIM)
        if oid in self.escaped_objs:
            out.add(UNKNOWN)
        return out

    # -- sites -------------------------------------------------------------- #

    def _site(self, node: ast.Call, cell: _Cell, callee: str,
              kind: str) -> CallSite:
        site = self.sites.get(node.node_id)
        if site is None:
            site = CallSite(node_id=node.node_id, script=cell.script,
                            region=cell.region, span=node.span,
                            callee=callee, kind=kind)
            self.sites[node.node_id] = site
            self._mark()
        return site

    def _site_target(self, site: CallSite, atom: Atom) -> None:
        if atom.fid not in site.targets:
            site.targets.add(atom.fid)
            site.chains[atom.fid] = self._chain_text(atom)
            self._mark()

    def _site_incomplete(self, site: CallSite) -> None:
        if not site.incomplete:
            site.incomplete = True
            self._mark()

    # -- registration ------------------------------------------------------- #

    def _register(self, atoms: Atoms, how: str) -> None:
        for atom in atoms:
            if atom.kind == "fn":
                if atom not in self.registered:
                    self.registered.add(atom)
                    self._note(atom, f"registered as {how}")
                    self._mark()
            elif atom is UNKNOWN:
                pass  # registering an untracked value invokes nothing we own
            elif atom.kind == "obj":
                self._escape_obj(atom.oid)

    # -- function calls ------------------------------------------------------ #

    def _call_function(self, atom: Atom, args: List[Atoms],
                       caller: _Cell, site: Optional[CallSite]) -> Atoms:
        self._step()
        fid = atom.fid
        node = self.fn_nodes.get(fid)
        if node is None:
            raise _Bail(f"unknown function id {fid}")
        params = node.params
        padded = [set(a) for a in args[: len(params)]]
        while len(padded) < len(params):
            padded.append({PRIM})
        argkey = tuple(_abstract(a) for a in padded)
        key: CellKey = ("fn", fid, atom.env, argkey)

        cell = self.cells.get(key)
        if cell is None:
            if len(self.cells) >= MAX_CELLS:
                raise _Bail("cell budget exhausted")
            names = _declared_names(node.body) | set(params)
            frame_id = self._new_frame(atom.env, names)
            cell = _Cell(key=key, script=self.fn_script.get(fid, "?"),
                         region=("fn", str(fid)), frame=frame_id,
                         body=node.body)
            self.cells[key] = cell
            self._mark()
        frame = self.frames[cell.frame]
        for pname, atoms in zip(params, padded):
            slot = frame.vars.setdefault(pname, set())
            before = len(slot)
            slot |= atoms
            if len(slot) != before:
                self._mark()

        if fid not in self.invoked:
            self.invoked.add(fid)
            self._mark()
        self.cell_calls.setdefault(caller.key, set()).add(key)
        if site is not None:
            self.site_cells.setdefault(site.node_id, set()).add(key)
            self._site_target(site, atom)

        if not cell.evaluating and cell.round_mark != self.round:
            cell.round_mark = self.round
            cell.evaluating = True
            try:
                self._hoist(cell)
                self._exec_stmts(cell.body, cell)
            finally:
                cell.evaluating = False
        return set(cell.returns)

    def _invoke(self, callees: Atoms, args: List[Atoms], cell: _Cell,
                site: Optional[CallSite]) -> Atoms:
        """Dispatch a resolved callee set; returns the abstract result."""
        result: Atoms = set()
        for atom in callees:
            if atom.kind == "fn":
                result |= self._call_function(atom, args, cell, site)
            elif atom is UNKNOWN:
                if site is not None:
                    self._site_incomplete(site)
                for arg in args:
                    for a in arg:
                        self._escape(a, "passed through an unresolved callee")
                result.add(UNKNOWN)
            # str/num/prim/obj callees throw at runtime: no flow.
        return result

    def _hoist(self, cell: _Cell) -> None:
        for decl in _hoisted_decls(cell.body):
            fid = self.fid_by_node.get(decl.func.node_id)
            if fid is None:
                raise _Bail("function declaration missing from scan")
            atom = _fn(fid, cell.frame)
            if decl.func.name:
                self._bind(cell.frame, decl.func.name, {atom}, cell)

    # -- statements ----------------------------------------------------------- #

    def _exec_stmts(self, body: Sequence[ast.JSNode], cell: _Cell) -> None:
        for stmt in body:
            self._exec(stmt, cell)

    def _exec(self, stmt: ast.JSNode, cell: _Cell) -> None:
        self._step()
        if isinstance(stmt, ast.VarDecl):
            atoms = self._eval(stmt.init, cell) if stmt.init else {PRIM}
            self._bind(cell.frame, stmt.name, atoms, cell)
        elif isinstance(stmt, ast.FunctionDecl):
            pass  # bound at hoist time
        elif isinstance(stmt, ast.ExpressionStmt):
            self._eval(stmt.expr, cell)
        elif isinstance(stmt, ast.IfStmt):
            self._eval(stmt.test, cell)
            self._exec_stmts(stmt.consequent, cell)
            self._exec_stmts(stmt.alternate, cell)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._eval(stmt.test, cell)
            self._exec_stmts(stmt.body, cell)
        elif isinstance(stmt, ast.ForStmt):
            if isinstance(stmt.init, ast.VarDecl):
                self._exec(stmt.init, cell)
            elif stmt.init is not None:
                self._eval(stmt.init, cell)
            if stmt.test is not None:
                self._eval(stmt.test, cell)
            self._exec_stmts(stmt.body, cell)
            if stmt.update is not None:
                self._eval(stmt.update, cell)
        elif isinstance(stmt, ast.ForInStmt):
            obj_atoms = self._eval(stmt.obj, cell)
            for atom in obj_atoms:
                if atom.kind == "obj":
                    self._load(atom.oid, None, "read")
            self._bind(cell.frame, stmt.name, {UNKNOWN}, cell)
            self._exec_stmts(stmt.body, cell)
        elif isinstance(stmt, ast.SwitchStmt):
            self._eval(stmt.discriminant, cell)
            for test, case_body in stmt.cases:
                if test is not None:
                    self._eval(test, cell)
                self._exec_stmts(case_body, cell)
        elif isinstance(stmt, ast.ReturnStmt):
            atoms = self._eval(stmt.value, cell) if stmt.value else {PRIM}
            before = len(cell.returns)
            cell.returns |= atoms
            if len(cell.returns) != before:
                self._mark()
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass
        elif isinstance(stmt, ast.ThrowStmt):
            for atom in self._eval(stmt.value, cell):
                self._escape(atom, "thrown as an exception")
        elif isinstance(stmt, ast.TryStmt):
            self._exec_stmts(stmt.block, cell)
            if stmt.param:
                self._bind(cell.frame, stmt.param, {UNKNOWN}, cell)
            self._exec_stmts(stmt.handler, cell)
            self._exec_stmts(stmt.finally_body, cell)
        elif isinstance(stmt, ast.FunctionExpr):
            self._eval(stmt, cell)
        else:
            raise _Bail(f"unsupported statement {type(stmt).__name__}")

    # -- expressions ------------------------------------------------------------ #

    def _eval(self, node: ast.JSNode, cell: _Cell) -> Atoms:
        self._step()
        if isinstance(node, ast.Literal):
            value = node.value
            if isinstance(value, str):
                return {_str(value)}
            if isinstance(value, bool) or value is None:
                return {PRIM}
            if isinstance(value, (int, float)):
                return {_num(float(value))}
            return {PRIM}
        if isinstance(node, ast.Identifier):
            found = self._lookup(cell.frame, node.name)
            return set(found) if found is not None else {UNKNOWN}
        if isinstance(node, ast.ThisExpr):
            return {UNKNOWN}
        if isinstance(node, ast.ArrayLiteral):
            oid = self._alloc(node, cell)
            for index, element in enumerate(node.elements):
                self._store(oid, str(index), self._eval(element, cell), cell)
            return {_obj(oid)}
        if isinstance(node, ast.ObjectLiteral):
            oid = self._alloc(node, cell)
            for key, value in node.entries:
                self._store(oid, key, self._eval(value, cell), cell)
            return {_obj(oid)}
        if isinstance(node, ast.FunctionExpr):
            fid = self.fid_by_node.get(node.node_id)
            if fid is None:
                raise _Bail("function expression missing from scan")
            atom = _fn(fid, cell.frame)
            self._note(atom, f"defined in {cell.script}")
            return {atom}
        if isinstance(node, ast.Unary):
            self._eval(node.operand, cell)
            return {PRIM}
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, cell)
        if isinstance(node, ast.Logical):
            return self._eval(node.left, cell) | self._eval(node.right, cell)
        if isinstance(node, ast.Conditional):
            self._eval(node.test, cell)  # truthiness only: no escape
            return (self._eval(node.consequent, cell)
                    | self._eval(node.alternate, cell))
        if isinstance(node, ast.Assignment):
            return self._eval_assignment(node, cell)
        if isinstance(node, ast.UpdateExpr):
            target = node.target
            if isinstance(target, ast.Identifier):
                self._bind(cell.frame, target.name, {PRIM}, cell)
            elif isinstance(target, ast.Member):
                self._member_selfupdate(target, cell)
            else:
                raise _Bail("unsupported update target")
            return {PRIM}
        if isinstance(node, ast.Member):
            return self._eval_member_load(node, cell, "read")
        if isinstance(node, ast.Call):
            return self._eval_call(node, cell)
        raise _Bail(f"unsupported expression {type(node).__name__}")

    def _eval_binary(self, node: ast.Binary, cell: _Cell) -> Atoms:
        left = self._eval(node.left, cell)
        right = self._eval(node.right, cell)
        if node.op == "+" and len(left) == 1 and len(right) == 1:
            lhs, rhs = next(iter(left)), next(iter(right))
            if lhs.kind == "str" and rhs.kind == "str":
                text = lhs.text + rhs.text
                return {_str(text)} if len(text) <= MAX_STR_LEN else {PRIM}
            if lhs.kind == "num" and rhs.kind == "num":
                return {_num(lhs.num + rhs.num)}
            if lhs.kind == "str" and rhs.kind == "num":
                text = lhs.text + (str(int(rhs.num))
                                   if float(rhs.num).is_integer()
                                   else str(rhs.num))
                return {_str(text)} if len(text) <= MAX_STR_LEN else {PRIM}
        return {PRIM}

    def _eval_assignment(self, node: ast.Assignment, cell: _Cell) -> Atoms:
        target = node.target
        if isinstance(target, ast.Identifier):
            if node.op == "=":
                atoms = self._eval(node.value, cell)
                self._bind(cell.frame, target.name, atoms, cell)
                return set(atoms)
            self._eval(node.value, cell)
            self._bind(cell.frame, target.name, {PRIM}, cell)
            return {PRIM}
        if isinstance(target, ast.Member):
            if node.op == "=":
                atoms = self._eval(node.value, cell)
                self._member_store(target, atoms, cell)
                return set(atoms)
            self._eval(node.value, cell)
            self._member_selfupdate(target, cell)
            return {PRIM}
        raise _Bail("unsupported assignment target")

    # -- member access ------------------------------------------------------------ #

    def _member_parts(self, node: ast.Member,
                      cell: _Cell) -> Tuple[Atoms, Optional[str]]:
        base = self._eval(node.obj, cell)
        if node.prop is not None:
            return base, node.prop
        index = self._eval(node.index, cell) if node.index is not None else set()
        return base, _prop_key(index)

    def _eval_member_load(self, node: ast.Member, cell: _Cell,
                          ctx: str) -> Atoms:
        base, key = self._member_parts(node, cell)
        out: Atoms = set()
        for atom in base:
            if atom.kind == "obj":
                out |= self._load(atom.oid, key, ctx)
            elif atom is UNKNOWN:
                out.add(UNKNOWN)
            else:
                out.add(PRIM)  # property of a primitive
        return out or {PRIM}

    def _member_store(self, node: ast.Member, atoms: Atoms,
                      cell: _Cell) -> None:
        base, key = self._member_parts(node, cell)
        for atom in base:
            if atom.kind == "obj":
                self._store(atom.oid, key if key is not None else "*",
                            atoms, cell)
            elif atom is UNKNOWN:
                # Sentinel (-1, "*"): this cell writes somewhere we cannot
                # name — any observability proof over its stores must fail.
                self.cell_stores.setdefault(cell.key, set()).add((-1, "*"))
                for stored in atoms:
                    self._escape(stored, "stored through an untracked base")
        # stores on primitives are lost at runtime: nothing flows

    def _member_selfupdate(self, node: ast.Member, cell: _Cell) -> None:
        """Compound update ``obj.key += v`` — read + write of primitives."""
        base, key = self._member_parts(node, cell)
        for atom in base:
            if atom.kind == "obj":
                self._load(atom.oid, key, "selfupdate")
                self._store(atom.oid, key if key is not None else "*",
                            {PRIM}, cell)
            elif atom is UNKNOWN:
                self.cell_stores.setdefault(cell.key, set()).add((-1, "*"))

    # -- calls ------------------------------------------------------------------- #

    def _eval_call(self, node: ast.Call, cell: _Cell) -> Atoms:
        callee = node.callee
        if isinstance(callee, ast.Identifier):
            return self._call_identifier(node, callee, cell)
        if isinstance(callee, ast.Member):
            return self._call_member(node, callee, cell)
        # IIFE or computed callee expression
        callees = self._eval(callee, cell)
        args = [self._eval(arg, cell) for arg in node.args]
        kind = "new" if node.is_new else "call"
        site = self._site(node, cell, "<expression>", kind)
        result = self._invoke(callees, args, cell, site)
        return {UNKNOWN} if node.is_new else (result or {PRIM})

    def _call_identifier(self, node: ast.Call, callee: ast.Identifier,
                         cell: _Cell) -> Atoms:
        bound = self._lookup(cell.frame, callee.name)
        if bound is not None:
            args = [self._eval(arg, cell) for arg in node.args]
            kind = "new" if node.is_new else "call"
            site = self._site(node, cell, callee.name, kind)
            result = self._invoke(set(bound), args, cell, site)
            return {UNKNOWN} if node.is_new else (result or {PRIM})
        if callee.name in TIMER_FUNCTIONS:
            args = [self._eval(arg, cell) for arg in node.args]
            if args:
                self._register(args[0], f"{callee.name} callback")
            for extra in args[1:]:
                for atom in extra:
                    self._escape(atom, f"passed to {callee.name}")
            return {PRIM}
        # Unknown global callee: arguments leave the analyzable subset.
        args = [self._eval(arg, cell) for arg in node.args]
        site = self._site(node, cell, callee.name, "call")
        self._site_incomplete(site)
        for arg in args:
            for atom in arg:
                self._escape(atom, f"passed to unknown callee '{callee.name}'")
        return {UNKNOWN}

    def _call_member(self, node: ast.Call, callee: ast.Member,
                     cell: _Cell) -> Atoms:
        base = self._eval(callee.obj, cell)
        if callee.index is not None:
            index_atoms = self._eval(callee.index, cell)
            prop = _prop_key(index_atoms)
        else:
            prop = callee.prop

        if prop == "addEventListener":
            args = [self._eval(arg, cell) for arg in node.args]
            if len(args) > 1:
                self._register(args[1], "event handler")
            return {PRIM}

        if prop in CALLBACK_METHODS:
            args = [self._eval(arg, cell) for arg in node.args]
            site = self._site(node, cell, f".{prop}", "callback")
            element_atoms: Atoms = {UNKNOWN}
            for atom in base:
                if atom.kind == "obj":
                    element_atoms |= self._load(atom.oid, None, "read")
                elif atom is UNKNOWN:
                    self._site_incomplete(site)
            result: Atoms = set()
            if args:
                cb_args = [element_atoms, {UNKNOWN}, {UNKNOWN}]
                returned = self._invoke(args[0], cb_args, cell, site)
                for atom in returned:
                    self._escape(atom, f"returned from a .{prop} callback")
                result.add(UNKNOWN)
            for extra in args[1:]:
                for atom in extra:
                    self._escape(atom, f"passed to .{prop}")
            return result or {PRIM}

        if prop in ("push", "unshift"):
            args = [self._eval(arg, cell) for arg in node.args]
            for atom in base:
                if atom.kind == "obj":
                    for arg in args:
                        self._store(atom.oid, "*", arg, cell)
                elif atom is UNKNOWN:
                    self.cell_stores.setdefault(cell.key, set()).add((-1, "*"))
                    for arg in args:
                        for stored in arg:
                            self._escape(stored,
                                         "pushed into an untracked array")
            return {PRIM}

        if prop in ("pop", "shift"):
            out: Atoms = set()
            for atom in base:
                if atom.kind == "obj":
                    out |= self._load(atom.oid, None, "read")
                elif atom is UNKNOWN:
                    out.add(UNKNOWN)
            return out or {PRIM}

        # Generic method call: resolve through the abstract heap.
        args = [self._eval(arg, cell) for arg in node.args]
        label = f".{prop}" if prop is not None else ".<computed>"
        kind = "new" if node.is_new else "method"
        site = self._site(node, cell, label, kind)
        result = set()
        for atom in base:
            if atom.kind == "obj":
                loaded = self._load(atom.oid, prop, "read")
                result |= self._invoke(loaded, args, cell, site)
            else:
                # Builtin / untracked receiver: the method may invoke any
                # function argument (e.g. String.replace callbacks).
                self._site_incomplete(site)
                for arg in args:
                    for stored in arg:
                        self._escape(stored, f"passed to builtin {label}()")
                result.add(UNKNOWN)
        return {UNKNOWN} if node.is_new else (result or {PRIM})

    # -- driver ------------------------------------------------------------------ #

    def _top_cell(self, url: str) -> _Cell:
        key: CellKey = ("top", url)
        cell = self.cells.get(key)
        if cell is None:
            program = self.programs[url]
            frame_id = self._new_frame(-1, set())
            cell = _Cell(key=key, script=url, region=("top", url),
                         frame=frame_id, body=program.body)
            self.cells[key] = cell
        return cell

    def run(self) -> None:
        while True:
            self.round += 1
            if self.round > MAX_ROUNDS:
                raise _Bail("round budget exhausted")
            self.changed = False
            for url in self.graph.scripts:
                cell = self._top_cell(url)
                cell.round_mark = self.round
                cell.evaluating = True
                try:
                    self._hoist(cell)
                    self._exec_stmts(cell.body, cell)
                finally:
                    cell.evaluating = False
            for atom in list(self.registered | self.escaped):
                params = self.fn_nodes[atom.fid].params
                self._call_function(atom, [{UNKNOWN}] * len(params),
                                    self.event_cell, None)
            if not self.changed:
                break

    def result(self) -> ValueFlowResult:
        registered_fids = {a.fid for a in self.registered}
        escaped_fids = {a.fid for a in self.escaped}
        live = self.invoked | registered_fids | escaped_fids
        return ValueFlowResult(
            ok=True,
            rounds=self.round,
            live_fids=live,
            invoked_fids=set(self.invoked),
            registered_fids=registered_fids,
            escaped_fids=escaped_fids,
            escape_reasons=dict(self.escape_reasons),
            sites=self.sites,
            cell_stores=self.cell_stores,
            obj_loads=self.obj_loads,
            site_cells=self.site_cells,
            cell_calls=self.cell_calls,
            cell_gwrites=self.cell_gwrites,
            escaped_objs=self.escaped_objs,
            obj_labels=self.obj_labels,
        )


def resolve_value_flow(graph: CallGraph,
                       programs: Dict[str, ast.Program]) -> ValueFlowResult:
    """Run the value-flow analysis over an already-scanned call graph.

    Returns a failed result (``ok=False``) — and the caller must fall
    back to the edge-fixpoint liveness — if any script uses a construct
    the interpreter does not model or an analysis budget is exhausted.
    """
    try:
        interp = _Interp(graph, programs)
        interp.run()
        return interp.result()
    except _Bail as bail:
        return ValueFlowResult(ok=False, reason=str(bail))
    except RecursionError:
        return ValueFlowResult(ok=False, reason="recursion limit")
