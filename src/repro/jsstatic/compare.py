"""Cross-validation of static verdicts against dynamic ground truth.

For one benchmark we have two views of every function in every script:

* **static** — :func:`repro.jsstatic.analyze_page` says "dead" when no
  chain of calls/registrations from any script top level can reach it;
* **dynamic** — :mod:`repro.browser.js.coverage` records which functions
  actually executed during the engine's full scripted session.

Functions are matched by ``(script url, byte span)``: node ids differ
between the analyzer's parse and the engine's parse, but a function's
span inside its script is stable and unique.

Soundness means the static "dead" set is a *subset* of the dynamic
"never executed" set — precision must be exactly 1.0 and
``false_dead`` empty.  Recall measures how much of the dynamically
observed waste the static analysis predicts without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .analyzer import PageAnalysis, analyze_page

Span = Tuple[int, int]


@dataclass
class ScriptComparison:
    """Static vs. dynamic verdicts for one script resource."""

    url: str
    n_functions: int
    static_dead: Set[Span] = field(default_factory=set)
    dynamic_dead: Set[Span] = field(default_factory=set)
    #: executed functions the static side wrongly called dead (soundness
    #: violations — must be empty)
    false_dead: Set[Span] = field(default_factory=set)

    @property
    def true_dead(self) -> Set[Span]:
        return self.static_dead & self.dynamic_dead


@dataclass
class WorkloadComparison:
    """Per-workload precision/recall of the static dead-code verdicts."""

    benchmark: str
    analysis: PageAnalysis
    scripts: List[ScriptComparison]
    #: pixel-slice fraction of the same run, for the report's context column
    pixel_fraction: Optional[float] = None

    # -- aggregates ------------------------------------------------------- #

    @property
    def n_functions(self) -> int:
        return sum(s.n_functions for s in self.scripts)

    @property
    def n_static_dead(self) -> int:
        return sum(len(s.static_dead) for s in self.scripts)

    @property
    def n_dynamic_dead(self) -> int:
        return sum(len(s.dynamic_dead) for s in self.scripts)

    @property
    def n_true_dead(self) -> int:
        return sum(len(s.true_dead) for s in self.scripts)

    @property
    def false_dead(self) -> List[Tuple[str, Span]]:
        return [(s.url, span) for s in self.scripts for span in sorted(s.false_dead)]

    @property
    def precision(self) -> float:
        """true-dead / static-dead; 1.0 by soundness (vacuously if none)."""
        return self.n_true_dead / self.n_static_dead if self.n_static_dead else 1.0

    @property
    def recall(self) -> float:
        """true-dead / dynamic-dead; how much waste statics can predict."""
        return self.n_true_dead / self.n_dynamic_dead if self.n_dynamic_dead else 1.0

    @property
    def is_sound(self) -> bool:
        return not self.false_dead

    def static_dead_bytes(self) -> int:
        return self.analysis.total_dead_bytes()


def benchmark_sources(bench) -> Dict[str, str]:
    """All script sources a benchmark's session can execute, in load order."""
    sources: Dict[str, str] = dict(bench.page.scripts)
    for late in bench.late_scripts.values():
        sources.update(late)
    return sources


def compare_coverage(
    name: str, analysis: PageAnalysis, coverage,
    pixel_fraction: Optional[float] = None,
) -> WorkloadComparison:
    """Join a finished analysis with a `CoverageTracker`'s ground truth."""
    static_dead_by_script: Dict[str, Set[Span]] = {}
    for info in analysis.dead_functions:
        static_dead_by_script.setdefault(info.script, set()).add(info.span)

    scripts: List[ScriptComparison] = []
    for sc in coverage.scripts():
        if sc.name not in analysis.programs:
            continue  # e.g. inline scripts the caller chose not to analyze
        executed: Set[Span] = {
            sc.function_spans[node_id]
            for node_id in sc.executed_functions
            if node_id in sc.function_spans
        }
        all_spans: Set[Span] = set(sc.function_spans.values())
        dynamic_dead = all_spans - executed
        static_dead = static_dead_by_script.get(sc.name, set()) & all_spans
        scripts.append(
            ScriptComparison(
                url=sc.name,
                n_functions=len(all_spans),
                static_dead=static_dead,
                dynamic_dead=dynamic_dead,
                false_dead=static_dead & executed,
            )
        )
    return WorkloadComparison(name, analysis, scripts, pixel_fraction)


def compare_benchmark(name: str, engine=None,
                      pixel_fraction: Optional[float] = None) -> WorkloadComparison:
    """Analyze a bundled benchmark statically and cross-validate it.

    ``engine`` may be a finished :class:`~repro.browser.BrowserEngine`
    (e.g. from ``harness.experiments.cached_run``); when omitted, the
    benchmark's full session is run here.
    """
    from ..workloads import benchmark

    bench = benchmark(name)
    analysis = analyze_page(benchmark_sources(bench))
    if engine is None:
        from ..harness.experiments import run_engine

        engine = run_engine(bench)
    return compare_coverage(
        name, analysis, engine.interp.coverage, pixel_fraction
    )


def comparison_report(comparisons: List[WorkloadComparison]) -> str:
    """Render the per-workload precision/recall table (docs + CLI)."""
    header = (
        f"{'workload':<24s} {'funcs':>5s} {'dyn-dead':>8s} {'stat-dead':>9s} "
        f"{'prec':>5s} {'recall':>6s} {'unreach':>7s} {'dead-st':>7s} "
        f"{'stat-dead-B':>11s} {'dyn-unused-B':>12s} {'pixel':>6s}"
    )
    lines = [header, "-" * len(header)]
    for cmp in comparisons:
        dyn_unused = sum(
            sc.unused_bytes()
            for sc in _coverage_scripts(cmp)
        )
        pixel = f"{cmp.pixel_fraction:.1%}" if cmp.pixel_fraction is not None else "-"
        lines.append(
            f"{cmp.benchmark:<24s} {cmp.n_functions:>5d} {cmp.n_dynamic_dead:>8d} "
            f"{cmp.n_static_dead:>9d} {cmp.precision:>5.2f} {cmp.recall:>6.2f} "
            f"{len(cmp.analysis.unreachable_stmts()):>7d} "
            f"{len(cmp.analysis.dead_stores()):>7d} "
            f"{cmp.static_dead_bytes():>11d} {dyn_unused:>12d} {pixel:>6s}"
        )
        for url, span in cmp.false_dead:
            lines.append(f"  !! UNSOUND: {url} span={span} executed dynamically")
    return "\n".join(lines)


def _coverage_scripts(cmp: WorkloadComparison):
    """Dynamic byte totals are reconstructed from the comparison itself."""
    # The comparison only kept spans; recompute unused bytes from the
    # analysis's scripts and the dynamic dead spans (same merged-interval
    # arithmetic as ScriptCoverage.used_bytes, without nested-span
    # subtleties because dynamic-dead spans already exclude executed ones).
    from ..browser.js.coverage import span_total

    class _View:
        def __init__(self, url: str, dead: Set[Span]) -> None:
            self.url = url
            self.dead = dead

        def unused_bytes(self) -> int:
            return span_total(sorted(self.dead))

    return [_View(s.url, s.dynamic_dead) for s in cmp.scripts]


def function_verdicts(cmp: WorkloadComparison) -> List[Dict[str, object]]:
    """Machine-readable per-function verdicts for one workload.

    One entry per function the analyzer found: the script, the
    function's label and byte span, the static ``verdict`` ("dead" or
    "live"), the ``reason`` behind it (which edge keeps a live function
    reachable; why a dead one is unreachable), and — when the dynamic
    run covered the script — whether the function actually ``executed``.
    """
    analysis = cmp.analysis
    graph = analysis.graph
    flow = graph.valueflow if (
        graph.valueflow is not None and graph.valueflow.ok
    ) else None
    dead_ids = {f.fid for f in analysis.dead_functions}
    fn_by_fid = {info.fid: info for info in graph.functions}
    covered = {s.url for s in cmp.scripts}
    dynamic_dead = {
        (s.url, span) for s in cmp.scripts for span in s.dynamic_dead
    }
    out: List[Dict[str, object]] = []
    for info in graph.functions:
        dead = info.fid in dead_ids
        if dead:
            pkind, pident = info.parent
            if pkind == "fn" and int(pident) in dead_ids:
                parent = fn_by_fid[int(pident)].label()
                reason = f"enclosing function {parent} is dead"
            elif flow is not None:
                reason = (
                    "value flow proves no invocation, registration, or "
                    "escape can reach its value"
                )
            else:
                reason = (
                    "no call, registration, or escape edge from a live "
                    "region reaches it"
                )
        elif flow is not None:
            reason = _valueflow_reason(flow, info.fid)
        else:
            reason = _liveness_reason(graph, info, dead_ids, fn_by_fid)
        executed: Optional[bool] = None
        if info.script in covered:
            executed = (info.script, info.span) not in dynamic_dead
        out.append(
            {
                "script": info.script,
                "name": info.label(),
                "span": list(info.span),
                "verdict": "dead" if dead else "live",
                "reason": reason,
                "executed": executed,
            }
        )
    return out


def _valueflow_reason(flow, fid: int) -> str:
    """Why the value-flow analysis keeps a function live."""
    if fid in flow.invoked_fids and fid not in flow.escaped_fids:
        return "a resolved call site invokes it"
    if fid in flow.registered_fids:
        return "registered as an event/timer/callback target"
    if fid in flow.escaped_fids:
        why = flow.escape_reasons.get(fid, "value leaves the tracked subset")
        return f"escapes ({why}); kept live conservatively"
    return "reachable from page load"


def call_site_verdicts(analysis: PageAnalysis) -> List[Dict[str, object]]:
    """Per-call-site resolution verdicts from the value-flow analysis.

    One entry per call site the abstract interpreter reached:
    ``status`` is "resolved" (the target set is exhaustive) or
    "fallback" (an untracked value may also be called there, so the
    name-match over-approximation still applies), with the flow chain
    of each resolved target as auditable evidence.  Empty when the
    analysis bailed out (``graph.valueflow`` unset or not ok).
    """
    graph = analysis.graph
    flow = graph.valueflow
    if flow is None or not flow.ok:
        return []
    fn_by_fid = {info.fid: info for info in graph.functions}

    def _label(fid: int) -> str:
        info = fn_by_fid.get(fid)
        return info.label() if info is not None else f"<fn#{fid}>"

    out: List[Dict[str, object]] = []
    for node_id in sorted(flow.sites):
        site = flow.sites[node_id]
        region_kind, region_ident = site.region
        if region_kind == "fn":
            region_label = _label(int(region_ident))
        else:
            region_label = f"<top:{region_ident}>"
        out.append(
            {
                "script": site.script,
                "region": region_label,
                "span": list(site.span),
                "callee": site.callee,
                "kind": site.kind,
                "status": site.status,
                "targets": sorted(_label(fid) for fid in site.targets),
                "chains": {
                    _label(fid): chain
                    for fid, chain in sorted(site.chains.items())
                },
            }
        )
    return out


def _liveness_reason(graph, info, dead_ids: Set[int], fn_by_fid) -> str:
    """The first live edge that reaches ``info``, as human-readable text."""

    def _where(region) -> Optional[str]:
        kind, ident = region
        if kind == "top":
            return f"top level of {ident}"
        if int(ident) in dead_ids:
            return None  # edges from dead regions keep nothing alive
        return fn_by_fid[int(ident)].label()

    for region, edges in graph.value_edges.items():
        where = _where(region)
        if where is None:
            continue
        for kind, fid in edges:
            if fid == info.fid:
                return f"{kind.name.lower()} edge from {where}"
    for region, edges in graph.name_edges.items():
        where = _where(region)
        if where is None:
            continue
        for kind, name in edges:
            if name in info.aliases:
                return f"{kind.name.lower()} edge to '{name}' from {where}"
    return "reachable from page load"
