"""Page-level call graph with DOM/event registration edges.

A *region* is one unit of straight-line reachability: a script's top
level (``("top", url)``) or one function body (``("fn", fid)``).  Edges
say "if this region ever runs, that function may later run".  Beyond
direct calls, the builder models the ways the engine can invoke a
function without a syntactic call:

* ``handler`` — registered via ``addEventListener`` (element, document or
  window) and fired by ``dispatch_event``;
* ``timer`` — passed to ``setTimeout`` / ``requestAnimationFrame``;
* ``callback`` — passed to an array higher-order method
  (``forEach``/``map``/``filter``/``reduce``/``sort``);
* ``ref`` — the function's *name* is read anywhere (aliasing: the value
  may flow somewhere we cannot track);
* ``escape`` — a function *value* appears in any other position (object
  literal entry, call argument, return value, member store, ...).

``ref`` and ``escape`` are the conservative safety net: any function
whose value can be observed by running code is kept live, which is what
makes the dead-function verdict sound.  Precision comes only from the
cases with no edge at all: a declared-but-never-mentioned function, or a
name bound to a function and never read.

Name resolution is intentionally crude — one global namespace across all
scripts, every binding of a name is a candidate target — because the
engine itself resolves free identifiers through the shared global
environment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..browser.js import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .valueflow import ValueFlowResult

#: region key: ("top", script url) or ("fn", function id as str)
RegionKey = Tuple[str, str]

#: array methods that synchronously invoke their first argument
CALLBACK_METHODS = frozenset({"forEach", "map", "filter", "reduce", "sort"})
#: global functions that schedule their first argument
TIMER_FUNCTIONS = frozenset({"setTimeout", "requestAnimationFrame"})


class EdgeKind(enum.Enum):
    DIRECT = "direct"
    REF = "ref"
    HANDLER = "handler"
    TIMER = "timer"
    CALLBACK = "callback"
    ESCAPE = "escape"
    #: call edge resolved by the interprocedural value-flow analysis
    VFLOW = "vflow"


@dataclass
class FunctionInfo:
    """One function (declaration or expression) found in a script."""

    fid: int
    script: str
    node: ast.FunctionExpr
    span: Tuple[int, int]
    #: names under which running code can reach this function's value
    aliases: Set[str] = field(default_factory=set)
    #: region whose execution creates this function's value
    parent: RegionKey = ("top", "")

    @property
    def name(self) -> Optional[str]:
        return self.node.name

    def label(self) -> str:
        if self.aliases:
            return sorted(self.aliases)[0]
        return f"<anonymous@{self.span[0]}>"


def region_of(info: FunctionInfo) -> RegionKey:
    return ("fn", str(info.fid))


@dataclass
class CallGraph:
    """Functions, regions, and may-invoke edges for one page."""

    functions: List[FunctionInfo] = field(default_factory=list)
    #: script urls in load order (their top levels are the roots)
    scripts: List[str] = field(default_factory=list)
    #: edges to a known function value
    value_edges: Dict[RegionKey, List[Tuple[EdgeKind, int]]] = field(
        default_factory=dict
    )
    #: edges to a *name*, resolved against every alias at fixpoint time
    name_edges: Dict[RegionKey, List[Tuple[EdgeKind, str]]] = field(
        default_factory=dict
    )
    #: successful value-flow analysis, when ``build_call_graph`` ran with
    #: ``resolve=True`` and the interpreter covered every script
    valueflow: Optional["ValueFlowResult"] = None

    def functions_named(self, name: str) -> List[FunctionInfo]:
        return [f for f in self.functions if name in f.aliases]

    def live_functions(self) -> Set[int]:
        """Fids possibly invoked from any script top level.

        When the value-flow analysis succeeded its resolved liveness
        (invoked ∪ registered ∪ escaped) replaces the name/escape edge
        fixpoint; otherwise the PR-2 over-approximation applies.
        """
        if self.valueflow is not None and self.valueflow.ok:
            return set(self.valueflow.live_fids)
        return self._edge_fixpoint()

    def _edge_fixpoint(self) -> Set[int]:
        """Fixpoint over REF/ESCAPE/etc edges (the sound fallback)."""
        by_name: Dict[str, List[int]] = {}
        for info in self.functions:
            for alias in info.aliases:
                by_name.setdefault(alias, []).append(info.fid)

        live: Set[int] = set()
        work: List[RegionKey] = [("top", url) for url in self.scripts]
        seen_regions: Set[RegionKey] = set(work)
        while work:
            region = work.pop()
            targets: Set[int] = set()
            for _kind, fid in self.value_edges.get(region, ()):
                targets.add(fid)
            for _kind, name in self.name_edges.get(region, ()):
                targets.update(by_name.get(name, ()))
            for fid in targets:
                if fid not in live:
                    live.add(fid)
                    fn_region = ("fn", str(fid))
                    if fn_region not in seen_regions:
                        seen_regions.add(fn_region)
                        work.append(fn_region)
        return live

    def dead_functions(self) -> List[FunctionInfo]:
        live = self.live_functions()
        return [f for f in self.functions if f.fid not in live]


class _Scanner:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    # -- edge plumbing --------------------------------------------------- #

    def _value_edge(self, region: RegionKey, kind: EdgeKind, fid: int) -> None:
        self.graph.value_edges.setdefault(region, []).append((kind, fid))

    def _name_edge(self, region: RegionKey, kind: EdgeKind, name: str) -> None:
        self.graph.name_edges.setdefault(region, []).append((kind, name))

    def _register(self, script: str, func: ast.FunctionExpr,
                  parent: RegionKey, aliases: Set[str]) -> FunctionInfo:
        info = FunctionInfo(
            fid=len(self.graph.functions),
            script=script,
            node=func,
            span=func.span,
            aliases=set(aliases),
            parent=parent,
        )
        if func.name:
            info.aliases.add(func.name)
        self.graph.functions.append(info)
        # The function body is its own region; scan it now.
        self.scan_region(script, region_of(info), func.body)
        return info

    # -- region scan ------------------------------------------------------ #

    def scan_script(self, url: str, program: ast.Program) -> None:
        self.graph.scripts.append(url)
        self.scan_region(url, ("top", url), program.body)

    def scan_region(self, script: str, region: RegionKey,
                    body: List[ast.JSNode]) -> None:
        for stmt in body:
            self._scan(script, region, stmt)

    def _scan(self, script: str, region: RegionKey, node: ast.JSNode) -> None:
        if isinstance(node, ast.FunctionDecl):
            self._register(script, node.func, region,
                           {node.func.name} if node.func.name else set())
            return
        if isinstance(node, ast.VarDecl):
            if isinstance(node.init, ast.FunctionExpr):
                self._register(script, node.init, region, {node.name})
            elif node.init is not None:
                self._scan(script, region, node.init)
            return
        if isinstance(node, ast.ExpressionStmt):
            expr = node.expr
            if (
                isinstance(expr, ast.Assignment)
                and expr.op == "="
                and isinstance(expr.target, ast.Identifier)
                and isinstance(expr.value, ast.FunctionExpr)
            ):
                # ``name = function () {...}`` — a pure aliasing store.
                self._register(script, expr.value, region, {expr.target.name})
                return
            self._scan(script, region, expr)
            return
        if isinstance(node, ast.FunctionExpr):
            # A function value in a non-aliasing position escapes.
            info = self._register(script, node, region, set())
            self._value_edge(region, EdgeKind.ESCAPE, info.fid)
            return
        if isinstance(node, ast.Identifier):
            self._name_edge(region, EdgeKind.REF, node.name)
            return
        if isinstance(node, ast.Assignment):
            if isinstance(node.target, ast.Identifier):
                if node.op != "=":
                    self._name_edge(region, EdgeKind.REF, node.target.name)
            else:
                self._scan(script, region, node.target)
            self._scan(script, region, node.value)
            return
        if isinstance(node, ast.Call):
            self._scan_call(script, region, node)
            return
        if isinstance(node, ast.SwitchStmt):
            self._scan(script, region, node.discriminant)
            for test, case_body in node.cases:
                if test is not None:
                    self._scan(script, region, test)
                self.scan_region(script, region, case_body)
            return
        for child in _children(node):
            self._scan(script, region, child)

    def _scan_call(self, script: str, region: RegionKey, node: ast.Call) -> None:
        callee = node.callee
        special: Optional[EdgeKind] = None  # kind for the callback argument
        callback_pos = 0

        if isinstance(callee, ast.Identifier):
            self._name_edge(region, EdgeKind.DIRECT, callee.name)
            if callee.name in TIMER_FUNCTIONS:
                special = EdgeKind.TIMER
        elif isinstance(callee, ast.Member):
            if callee.prop == "addEventListener":
                special, callback_pos = EdgeKind.HANDLER, 1
            elif callee.prop in CALLBACK_METHODS:
                special = EdgeKind.CALLBACK
            self._scan(script, region, callee.obj)
            if callee.index is not None:
                self._scan(script, region, callee.index)
        elif isinstance(callee, ast.FunctionExpr):
            # Immediately-invoked function expression.
            info = self._register(script, callee, region, set())
            self._value_edge(region, EdgeKind.DIRECT, info.fid)
        else:
            self._scan(script, region, callee)

        for pos, arg in enumerate(node.args):
            kind = special if (special is not None and pos == callback_pos) else None
            if isinstance(arg, ast.FunctionExpr):
                info = self._register(script, arg, region, set())
                self._value_edge(region, kind or EdgeKind.ESCAPE, info.fid)
            elif kind is not None and isinstance(arg, ast.Identifier):
                self._name_edge(region, kind, arg.name)
            else:
                self._scan(script, region, arg)


def _children(node: ast.JSNode) -> List[ast.JSNode]:
    out: List[ast.JSNode] = []
    for value in vars(node).values():
        if isinstance(value, ast.JSNode):
            out.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.JSNode):
                    out.append(item)
                elif isinstance(item, tuple):
                    out.extend(s for s in item if isinstance(s, ast.JSNode))
    return out


def callgraph_edges(graph: CallGraph) -> List[Dict[str, object]]:
    """Flat edge dump with kind and resolution provenance (CLI/report).

    One dict per edge: the source ``region`` (a top level or a function
    label), the edge ``kind``, the ``target`` (function label for value
    edges, the referenced name for name edges), and — for ``vflow``
    edges — the ``provenance`` flow chain the value-flow analysis
    recorded when it resolved a call site in that region to that target.
    """
    fn_by_fid = {info.fid: info for info in graph.functions}

    def _region_label(region: RegionKey) -> str:
        kind, ident = region
        if kind == "fn":
            info = fn_by_fid.get(int(ident))
            return info.label() if info is not None else f"<fn#{ident}>"
        return f"<top:{ident}>"

    def _fn_label(fid: int) -> str:
        info = fn_by_fid.get(fid)
        return info.label() if info is not None else f"<fn#{fid}>"

    # (region, fid) -> flow chain, from the resolved call sites
    chains: Dict[Tuple[RegionKey, int], str] = {}
    flow = graph.valueflow
    if flow is not None and flow.ok:
        for site in flow.sites.values():
            for fid, chain in site.chains.items():
                chains.setdefault((site.region, fid), chain)

    out: List[Dict[str, object]] = []
    regions = set(graph.value_edges) | set(graph.name_edges)
    for region in sorted(regions, key=_region_label):
        for kind, fid in graph.value_edges.get(region, ()):
            entry: Dict[str, object] = {
                "region": _region_label(region),
                "kind": kind.value,
                "target": _fn_label(fid),
            }
            if kind is EdgeKind.VFLOW:
                entry["provenance"] = chains.get((region, fid), "direct")
            out.append(entry)
        for kind, name in graph.name_edges.get(region, ()):
            out.append(
                {
                    "region": _region_label(region),
                    "kind": kind.value,
                    "target": name,
                }
            )
    return out


def build_call_graph(scripts: Dict[str, ast.Program],
                     resolve: bool = True) -> CallGraph:
    """Build the page call graph from parsed scripts in load order.

    With ``resolve=True`` (the default) the interprocedural value-flow
    analysis runs on top of the syntactic scan: resolved call sites add
    ``VFLOW`` value edges and liveness comes from the resolved
    invoked/registered/escaped sets.  If the analysis cannot cover the
    page it records nothing and the edge fixpoint stays authoritative.
    """
    graph = CallGraph()
    scanner = _Scanner(graph)
    for url, program in scripts.items():
        scanner.scan_script(url, program)
    if resolve:
        from .valueflow import resolve_value_flow

        flow = resolve_value_flow(graph, scripts)
        if flow.ok:
            graph.valueflow = flow
            for site in flow.sites.values():
                if site.incomplete:
                    continue
                edges = graph.value_edges.setdefault(site.region, [])
                for fid in site.targets:
                    edge = (EdgeKind.VFLOW, fid)
                    if edge not in edges:
                        edges.append(edge)
    return graph
