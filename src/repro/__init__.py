"""repro — reproduction of *Characterization of Unnecessary Computations in
Web Applications* (Golestani, Mahlke, Narayanasamy; ISPASS 2019).

The package provides:

* :mod:`repro.profiler` — the paper's contribution: a dynamic
  backward-slicing profiler over machine-level instruction traces, with
  pixel-buffer and syscall slicing criteria, per-thread slice statistics and
  namespace categorization of unnecessary computations.
* :mod:`repro.browser` — the substrate: a simulated multi-threaded browser
  engine (HTML/CSS/JS, style, layout, paint, raster, compositing, network,
  IPC) that emits Pin-style traces through :mod:`repro.machine`.
* :mod:`repro.workloads` — the four benchmark websites (Amazon desktop,
  Amazon mobile, Google Maps, Bing load+browse).
* :mod:`repro.analysis` — unused JS/CSS byte accounting (Table I) and CPU
  utilization timelines (Figure 2).
* :mod:`repro.harness` — end-to-end experiment runners regenerating every
  table and figure of the paper's evaluation.
"""

__version__ = "1.0.0"

from .machine import AddressSpace, Tracer, VirtualClock
from .profiler import Profiler, SlicingCriteria, pixel_criteria, syscall_criteria
from .trace import InstrKind, SymbolTable, TraceRecord, TraceStore

__all__ = [
    "__version__",
    "AddressSpace",
    "Tracer",
    "VirtualClock",
    "Profiler",
    "SlicingCriteria",
    "pixel_criteria",
    "syscall_criteria",
    "InstrKind",
    "SymbolTable",
    "TraceRecord",
    "TraceStore",
]
