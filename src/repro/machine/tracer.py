"""The tracer: produces Pin-style instruction traces from engine activity.

The simulated browser engine performs its semantic work in Python (real
parsing, real layout arithmetic, real pixel blending) and *mirrors the
dataflow* of that work through this tracer: every primitive step emits one
:class:`~repro.trace.records.TraceRecord` naming the abstract memory cells
and registers it reads and writes.  Control decisions emit a ``cmp``/
``branch`` pair so that liveness flows from branch conditions back into the
data that produced them, and the dynamic CFG has real diamonds and back
edges.

Program counters are stable per (function symbol, emit-site label): the same
static instruction always executes at the same pc, which is what makes
dynamic CFG construction (paper Section III-A) well-defined.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..trace.records import (
    FRAME_BEGIN_MARKER,
    FRAME_END_MARKER,
    SYNC_ACQUIRE,
    SYNC_RELEASE,
    FrameSpan,
    InstrKind,
    TraceMetadata,
    TraceRecord,
    sync_marker_tag,
)
from ..trace.store import TraceStore
from ..trace.symbols import SymbolTable
from .clock import VirtualClock
from .registers import (
    FLAGS,
    SYSCALL_ARG_REGISTERS,
    SYSCALL_RESULT_REGISTERS,
)
from .syscalls import BY_NAME

#: pc space reserved per function; functions can have up to this many sites.
FN_SPAN = 1 << 20

#: Marker tags with dedicated side-channel handling.
TILE_MARKER = "tile_ready"
LOAD_COMPLETE_MARKER = "load_complete"


class _ThreadState:
    """Per-thread call stack of function symbol ids."""

    __slots__ = ("tid", "name", "stack")

    def __init__(self, tid: int, name: str, root_fn: int) -> None:
        self.tid = tid
        self.name = name
        self.stack: List[int] = [root_fn]


class Tracer:
    """Collects the instruction trace of the simulated tab process."""

    def __init__(
        self,
        symbols: Optional[SymbolTable] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.symbols = symbols if symbols is not None else SymbolTable()
        self.clock = clock if clock is not None else VirtualClock()
        self.store = TraceStore(self.symbols, TraceMetadata())
        self._sites: Dict[Tuple[int, str], int] = {}
        self._site_counts: Dict[int, int] = {}
        self._threads: Dict[int, _ThreadState] = {}
        self._tid: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Threads                                                            #
    # ------------------------------------------------------------------ #

    def spawn_thread(self, tid: int, name: str, root_function: str) -> None:
        """Register a thread whose outermost frame is ``root_function``."""
        if tid in self._threads:
            raise ValueError(f"thread {tid} already exists")
        root_fn = self.symbols.intern(root_function)
        self._threads[tid] = _ThreadState(tid, name, root_fn)
        self.store.metadata.thread_names[tid] = name
        if self._tid is None:
            self._tid = tid

    def switch(self, tid: int) -> None:
        """Make ``tid`` the currently executing thread."""
        if tid not in self._threads:
            raise KeyError(f"unknown thread {tid}")
        self._tid = tid

    @property
    def current_tid(self) -> int:
        if self._tid is None:
            raise RuntimeError("no thread spawned yet")
        return self._tid

    def _state(self) -> _ThreadState:
        return self._threads[self.current_tid]

    def current_function(self) -> int:
        """Symbol id of the function on top of the current thread's stack."""
        return self._state().stack[-1]

    # ------------------------------------------------------------------ #
    # pc management                                                      #
    # ------------------------------------------------------------------ #

    def _pc(self, fn: int, label: str) -> int:
        key = (fn, label)
        pc = self._sites.get(key)
        if pc is None:
            index = self._site_counts.get(fn, 0)
            if index >= FN_SPAN:
                raise OverflowError(
                    f"function {self.symbols.name(fn)} exceeded {FN_SPAN} sites"
                )
            self._site_counts[fn] = index + 1
            pc = (fn + 1) * FN_SPAN + index
            self._sites[key] = pc
        return pc

    def pc_of(self, function: str, label: str) -> Optional[int]:
        """Look up the pc of an already-observed emit site (diagnostics)."""
        fn = self.symbols.lookup(function)
        if fn is None:
            return None
        return self._sites.get((fn, label))

    # ------------------------------------------------------------------ #
    # Record emission                                                    #
    # ------------------------------------------------------------------ #

    def _emit(self, record: TraceRecord) -> int:
        self.clock.tick(record.tid)
        return self.store.append(record)

    def op(
        self,
        label: str,
        reads: Tuple[int, ...] = (),
        writes: Tuple[int, ...] = (),
        reg_reads: Tuple[int, ...] = (),
        reg_writes: Tuple[int, ...] = (),
    ) -> int:
        """Emit an ordinary data-operation record at site ``label``."""
        fn = self.current_function()
        return self._emit(
            TraceRecord(
                tid=self.current_tid,
                pc=self._pc(fn, label),
                kind=InstrKind.OP,
                fn=fn,
                regs_read=tuple(reg_reads),
                regs_written=tuple(reg_writes),
                mem_read=tuple(reads),
                mem_written=tuple(writes),
            )
        )

    def compare_and_branch(self, label: str, reads: Tuple[int, ...]) -> None:
        """Emit a decision point: ``cmp`` (reads cells, sets FLAGS) + branch.

        The engine calls this once per evaluation of a conditional; the
        branch's dynamic successors (whatever records follow in this
        function) define the control dependences discovered by the CDG.
        """
        fn = self.current_function()
        tid = self.current_tid
        self._emit(
            TraceRecord(
                tid=tid,
                pc=self._pc(fn, label + "$cmp"),
                kind=InstrKind.CMP,
                fn=fn,
                regs_written=(FLAGS,),
                mem_read=tuple(reads),
            )
        )
        self._emit(
            TraceRecord(
                tid=tid,
                pc=self._pc(fn, label + "$br"),
                kind=InstrKind.BRANCH,
                fn=fn,
                regs_read=(FLAGS,),
            )
        )

    # ------------------------------------------------------------------ #
    # Functions                                                          #
    # ------------------------------------------------------------------ #

    def call(self, function: str, site: Optional[str] = None) -> None:
        """Emit a CALL at the caller and push ``function``."""
        state = self._state()
        caller = state.stack[-1]
        callee = self.symbols.intern(function)
        label = site if site is not None else f"call:{function}"
        self._emit(
            TraceRecord(
                tid=state.tid,
                pc=self._pc(caller, label),
                kind=InstrKind.CALL,
                fn=caller,
            )
        )
        state.stack.append(callee)

    def ret(self) -> None:
        """Emit a RET in the current function and pop it."""
        state = self._state()
        if len(state.stack) <= 1:
            raise RuntimeError(f"thread {state.tid}: return from root frame")
        fn = state.stack[-1]
        self._emit(
            TraceRecord(
                tid=state.tid,
                pc=self._pc(fn, "$ret"),
                kind=InstrKind.RET,
                fn=fn,
            )
        )
        state.stack.pop()

    @contextmanager
    def function(self, name: str, site: Optional[str] = None):
        """Context manager bracketing a function invocation."""
        self.call(name, site)
        try:
            yield
        finally:
            self.ret()

    # ------------------------------------------------------------------ #
    # Syscalls and markers                                               #
    # ------------------------------------------------------------------ #

    def syscall(
        self,
        name: str,
        reads: Tuple[int, ...] = (),
        writes: Tuple[int, ...] = (),
    ) -> int:
        """Emit a SYSCALL record with AMD64 ABI register effects.

        ``reads``/``writes`` are the concrete user-memory cells the kernel
        touches for this dynamic instance (resolved by the caller, as the
        paper's Pin tool resolves ``buf``/``dest_addr`` pointers).
        """
        model = BY_NAME[name]
        fn = self.current_function()
        return self._emit(
            TraceRecord(
                tid=self.current_tid,
                pc=self._pc(fn, f"syscall:{name}"),
                kind=InstrKind.SYSCALL,
                fn=fn,
                regs_read=SYSCALL_ARG_REGISTERS[: model.nargs],
                regs_written=SYSCALL_RESULT_REGISTERS,
                mem_read=tuple(reads),
                mem_written=tuple(writes),
                syscall=model.number,
            )
        )

    def marker(self, tag: str, cells: Tuple[int, ...] = ()) -> int:
        """Emit a MARKER record (the paper's ``xchg %r13w,%r13w``).

        ``TILE_MARKER`` markers additionally log (record index, pixel
        cells) into the trace metadata — the equivalent of the external
        file written by the paper's modified ``PlaybackToMemory``.
        """
        fn = self.current_function()
        index = self._emit(
            TraceRecord(
                tid=self.current_tid,
                pc=self._pc(fn, f"marker:{tag}"),
                kind=InstrKind.MARKER,
                fn=fn,
                mem_read=tuple(cells),
                marker=tag,
            )
        )
        if tag == TILE_MARKER:
            self.store.metadata.tile_buffers.append((index, tuple(cells)))
        elif tag == LOAD_COMPLETE_MARKER:
            self.store.metadata.load_complete_index = index
        return index

    # ------------------------------------------------------------------ #
    # Frame epochs                                                       #
    # ------------------------------------------------------------------ #

    def frame_begin(self, frame_id: int, kind: str) -> int:
        """Open frame ``frame_id`` (emit FRAME_BEGIN, record its span).

        Frames must be strictly increasing and non-overlapping: opening a
        new frame while another is still open is a pipeline bug, surfaced
        here rather than left for the trace linter to find post-mortem.
        """
        frames = self.store.metadata.frames
        if frames and not frames[-1].complete:
            raise RuntimeError(
                f"frame {frame_id} opened while frame "
                f"{frames[-1].frame_id} is still open"
            )
        if frames and frame_id <= frames[-1].frame_id:
            raise RuntimeError(
                f"frame ids must increase: {frame_id} after {frames[-1].frame_id}"
            )
        index = self.marker(FRAME_BEGIN_MARKER)
        frames.append(FrameSpan(frame_id=frame_id, kind=kind, begin=index))
        return index

    def frame_end(self, frame_id: int) -> int:
        """Close frame ``frame_id`` (emit FRAME_END, complete its span)."""
        frames = self.store.metadata.frames
        if not frames or frames[-1].complete or frames[-1].frame_id != frame_id:
            raise RuntimeError(f"frame {frame_id} is not the open frame")
        index = self.marker(FRAME_END_MARKER)
        frames[-1].end = index
        return index

    # ------------------------------------------------------------------ #
    # Synchronization events                                              #
    # ------------------------------------------------------------------ #

    def sync_release(self, obj: int, kind: Optional[str] = None) -> int:
        """Publish the current thread's history into sync object ``obj``.

        Everything this thread did before the release happens-before
        whatever any thread does after a matching :meth:`sync_acquire` on
        the same object.  ``kind`` selects the edge family recorded in the
        marker tag (``ipc``, ``task``, ... — see
        :func:`repro.trace.records.sync_marker_tag`).
        """
        return self.marker(sync_marker_tag(SYNC_RELEASE, kind), cells=(obj,))

    def sync_acquire(self, obj: int, kind: Optional[str] = None) -> int:
        """Import the history published into sync object ``obj``."""
        return self.marker(sync_marker_tag(SYNC_ACQUIRE, kind), cells=(obj,))

    def lock_acquire(self, obj: int) -> int:
        """Acquire a mutual-exclusion lock identified by cell ``obj``."""
        return self.marker(sync_marker_tag(SYNC_ACQUIRE, "lock"), cells=(obj,))

    def lock_release(self, obj: int) -> int:
        """Release a mutual-exclusion lock identified by cell ``obj``."""
        return self.marker(sync_marker_tag(SYNC_RELEASE, "lock"), cells=(obj,))


class TracedLock:
    """A mutual-exclusion lock whose critical sections appear in the trace.

    The lock itself is only a trace-level annotation — the engine is
    cooperatively scheduled, so there is nothing to block on.  What the
    annotation buys is a happens-before edge from each release to every
    later acquire of the same lock cell, chaining the critical sections of
    all threads into a total order the race detector can rely on.
    """

    __slots__ = ("tracer", "cell", "name")

    def __init__(self, tracer: Tracer, cell: int, name: str) -> None:
        self.tracer = tracer
        self.cell = cell
        self.name = name

    def acquire(self) -> None:
        self.tracer.lock_acquire(self.cell)

    def release(self) -> None:
        self.tracer.lock_release(self.cell)

    @contextmanager
    def held(self):
        """Bracket a critical section (static lock-order analysis keys on
        ``with ctx.lock("...").held():`` sites)."""
        self.acquire()
        try:
            yield self
        finally:
            self.release()
