"""Abstract address space of the simulated tab process.

Every engine datum that participates in dataflow (a DOM node field, a
computed style property, a layout coordinate, a display item, a 64x64 pixel
block of a raster tile, a chunk of downloaded resource bytes, ...) is backed
by one or more abstract word-granular memory cells.  The slicer tracks
liveness of these cells exactly as the paper's profiler tracks exact memory
addresses from the Pin trace — there is no aliasing by construction.

Threads share one address space (the paper: "we should not have separate
live memory sets for different threads"), while stacks are carved out of
distinct regions per thread purely for realism of address layout.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class MemRegion:
    """A contiguous run of abstract cells belonging to one named object."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name: str, base: int, size: int) -> None:
        self.name = name
        self.base = base
        self.size = size

    def cell(self, index: int = 0) -> int:
        """Address of the ``index``-th cell; bounds-checked."""
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}: cell {index} out of {self.size}")
        return self.base + index

    def cells(self, start: int = 0, count: int = None) -> Tuple[int, ...]:
        """Addresses of ``count`` cells starting at ``start``."""
        if count is None:
            count = self.size - start
        if start < 0 or start + count > self.size:
            raise IndexError(
                f"{self.name}: cells [{start}, {start + count}) out of {self.size}"
            )
        return tuple(range(self.base + start, self.base + start + count))

    def all_cells(self) -> Tuple[int, ...]:
        """Addresses of every cell in the region."""
        return tuple(range(self.base, self.base + self.size))

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"MemRegion({self.name!r}, base={self.base:#x}, size={self.size})"


class AddressSpace:
    """Bump allocator handing out non-overlapping :class:`MemRegion` s."""

    #: Leave the null page unused so address 0 never appears in a trace.
    _BASE = 0x1000

    def __init__(self) -> None:
        self._next = self._BASE
        self._regions: List[MemRegion] = []

    def alloc(self, name: str, size: int) -> MemRegion:
        """Allocate ``size`` cells for the object called ``name``."""
        if size <= 0:
            raise ValueError(f"{name}: region size must be positive, got {size}")
        region = MemRegion(name, self._next, size)
        self._next += size
        self._regions.append(region)
        return region

    def alloc_cell(self, name: str) -> int:
        """Allocate a single cell and return its address directly."""
        return self.alloc(name, 1).cell(0)

    def regions(self) -> List[MemRegion]:
        return list(self._regions)

    def find_region(self, addr: int) -> MemRegion:
        """Locate the region owning ``addr`` (diagnostics; O(log n))."""
        lo, hi = 0, len(self._regions)
        while lo < hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if addr < region.base:
                hi = mid
            elif addr >= region.base + region.size:
                lo = mid + 1
            else:
                return region
        raise KeyError(f"address {addr:#x} not in any region")

    def total_allocated(self) -> int:
        """Total number of cells handed out so far."""
        return self._next - self._BASE

    def usage_by_prefix(self) -> Dict[str, int]:
        """Aggregate allocated cells by the region-name prefix before ':'."""
        usage: Dict[str, int] = {}
        for region in self._regions:
            prefix = region.name.split(":", 1)[0]
            usage[prefix] = usage.get(prefix, 0) + region.size
        return usage
