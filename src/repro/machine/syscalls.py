"""System call models (AMD64 Linux subset used by the simulated browser).

The paper's Pin tool records, for every syscall Chromium executes, which
memory locations the kernel reads and writes (derived from the Linux manual)
and which registers are manipulated (from the AMD64 ABI).  This module is
the equivalent table for the syscalls our simulated engine issues.

Each :class:`SyscallModel` describes the *static* shape; the concrete memory
addresses touched by a particular dynamic syscall are supplied by the
emitting engine component (e.g. the network stack passes the receive-buffer
cells of a ``recvfrom``) — just as the Pin tool resolves ``buf``/``len`` at
run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class SyscallModel:
    """Static description of one system call.

    Attributes:
        number: Linux syscall number (AMD64 table).
        name: syscall name.
        nargs: number of argument registers consumed.
        reads_user_memory: whether the kernel reads caller memory
            (e.g. ``sendto`` reads ``buf`` and ``dest_addr``).
        writes_user_memory: whether the kernel writes caller memory
            (e.g. ``recvfrom`` fills ``buf``).
        is_output: True when the call externalizes data (network send,
            file/terminal write, display flush).  Output syscalls are the
            anchor points of the paper's syscall-based slicing criteria.
    """

    number: int
    name: str
    nargs: int
    reads_user_memory: bool = False
    writes_user_memory: bool = False
    is_output: bool = False


_MODELS = (
    SyscallModel(0, "read", 3, writes_user_memory=True),
    SyscallModel(1, "write", 3, reads_user_memory=True, is_output=True),
    SyscallModel(3, "close", 1),
    SyscallModel(9, "mmap", 6),
    SyscallModel(11, "munmap", 2),
    SyscallModel(20, "writev", 3, reads_user_memory=True, is_output=True),
    SyscallModel(24, "sched_yield", 0),
    SyscallModel(41, "socket", 3),
    SyscallModel(42, "connect", 3, reads_user_memory=True, is_output=True),
    SyscallModel(44, "sendto", 6, reads_user_memory=True, is_output=True),
    SyscallModel(45, "recvfrom", 6, writes_user_memory=True),
    SyscallModel(186, "gettid", 0),
    SyscallModel(202, "futex", 6, reads_user_memory=True, writes_user_memory=True),
    SyscallModel(228, "clock_gettime", 2, writes_user_memory=True),
    SyscallModel(232, "epoll_wait", 4, writes_user_memory=True),
    SyscallModel(257, "openat", 4, reads_user_memory=True),
    SyscallModel(281, "epoll_pwait", 6, writes_user_memory=True),
)

BY_NAME: Dict[str, SyscallModel] = {m.name: m for m in _MODELS}
BY_NUMBER: Dict[int, SyscallModel] = {m.number: m for m in _MODELS}

#: Syscall numbers whose dynamic instances anchor syscall-based slicing
#: criteria (Section IV-C: "the values used by any system calls" — we seed
#: liveness from the *inputs* of calls that externalize data).
OUTPUT_SYSCALL_NUMBERS: Tuple[int, ...] = tuple(
    m.number for m in _MODELS if m.is_output
)


def model_for(name: str) -> SyscallModel:
    """Return the model for ``name``; raises ``KeyError`` if unknown."""
    return BY_NAME[name]
