"""Virtual clock with per-thread busy accounting.

The benchmark machine runs the whole tab process on one CPU core (the paper
pins the process with affinity 1), so simulated time advances with every
executed instruction regardless of thread, plus explicit idle gaps (network
latency, user think time).

Busy time is bucketed per (time bucket, thread), which is exactly the data
needed to regenerate Figure 2 (main-thread CPU utilization while browsing
amazon.com).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple


class VirtualClock:
    """Microsecond-resolution clock driven by instruction execution.

    The default ``instr_cost_us`` reflects the trace scale: one emitted
    record stands for ~10^4 real instructions (~30us at 2GHz IPC~0.15 in
    browser-like code), so simulated sessions span realistic seconds.
    """

    def __init__(self, instr_cost_us: float = 30.0, bucket_us: int = 100_000) -> None:
        if instr_cost_us <= 0:
            raise ValueError("instr_cost_us must be positive")
        if bucket_us <= 0:
            raise ValueError("bucket_us must be positive")
        self.instr_cost_us = instr_cost_us
        self.bucket_us = bucket_us
        self._now_us = 0.0
        # (bucket index, tid) -> busy microseconds
        self._busy: Dict[Tuple[int, int], float] = defaultdict(float)

    @property
    def now_us(self) -> float:
        return self._now_us

    def tick(self, tid: int, instructions: int = 1) -> None:
        """Account for ``instructions`` executed by thread ``tid``."""
        cost = instructions * self.instr_cost_us
        # Attribute the busy time to the bucket where the work started;
        # bursts longer than a bucket are split across buckets.
        remaining = cost
        while remaining > 0:
            bucket = int(self._now_us // self.bucket_us)
            room = (bucket + 1) * self.bucket_us - self._now_us
            step = min(remaining, room)
            self._busy[(bucket, tid)] += step
            self._now_us += step
            remaining -= step

    def idle(self, duration_us: float) -> None:
        """Advance time without attributing busy work (I/O wait, think time)."""
        if duration_us < 0:
            raise ValueError("idle duration must be non-negative")
        self._now_us += duration_us

    def utilization_series(self, tid: int) -> List[Tuple[float, float]]:
        """Per-bucket utilization of thread ``tid``.

        Returns a list of (bucket start time in seconds, utilization in
        [0, 1]) covering every bucket from 0 to the current time.
        """
        last_bucket = int(self._now_us // self.bucket_us)
        series = []
        for bucket in range(last_bucket + 1):
            busy = self._busy.get((bucket, tid), 0.0)
            series.append((bucket * self.bucket_us / 1e6, min(1.0, busy / self.bucket_us)))
        return series

    def busy_time_us(self, tid: int) -> float:
        """Total busy time attributed to ``tid``."""
        return sum(v for (_, t), v in self._busy.items() if t == tid)
