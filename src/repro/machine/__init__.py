"""Synthetic machine: the Pin-substitute trace-collection substrate.

Provides the abstract address space, the x86-64-like register file and
syscall ABI models, a virtual clock with per-thread busy accounting, and the
:class:`Tracer` through which the simulated browser engine emits
instruction/memory traces.
"""

from .clock import VirtualClock
from .memory import AddressSpace, MemRegion
from .registers import (
    FLAGS,
    NUM_REGISTERS,
    REGISTER_NAMES,
    SYSCALL_ARG_REGISTERS,
    SYSCALL_RESULT_REGISTERS,
    register_name,
)
from .syscalls import BY_NAME, BY_NUMBER, OUTPUT_SYSCALL_NUMBERS, SyscallModel, model_for
from .tracer import FN_SPAN, LOAD_COMPLETE_MARKER, TILE_MARKER, TracedLock, Tracer

__all__ = [
    "AddressSpace",
    "MemRegion",
    "VirtualClock",
    "Tracer",
    "TracedLock",
    "FN_SPAN",
    "TILE_MARKER",
    "LOAD_COMPLETE_MARKER",
    "FLAGS",
    "NUM_REGISTERS",
    "REGISTER_NAMES",
    "SYSCALL_ARG_REGISTERS",
    "SYSCALL_RESULT_REGISTERS",
    "SyscallModel",
    "BY_NAME",
    "BY_NUMBER",
    "OUTPUT_SYSCALL_NUMBERS",
    "model_for",
    "register_name",
]
