"""Architectural registers of the synthetic machine.

The register file deliberately mirrors x86-64 (the architecture the paper
instruments with Pin) closely enough that the AMD64 syscall ABI can be
modelled faithfully: arguments in RDI/RSI/RDX/R10/R8/R9, result in RAX,
RCX and R11 clobbered by ``syscall``.

Each thread has its own architectural register context, so the slicer keeps
one live-register set per thread (paper Section III-B).
"""

from __future__ import annotations

from typing import Tuple

FLAGS = 0
RAX = 1
RBX = 2
RCX = 3
RDX = 4
RSI = 5
RDI = 6
RBP = 7
RSP = 8
R8 = 9
R9 = 10
R10 = 11
R11 = 12
R12 = 13
R13 = 14
R14 = 15
R15 = 16

NUM_REGISTERS = 17

REGISTER_NAMES: Tuple[str, ...] = (
    "flags", "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: Registers carrying syscall arguments 1..6 in the AMD64 ABI.
SYSCALL_ARG_REGISTERS: Tuple[int, ...] = (RDI, RSI, RDX, R10, R8, R9)

#: Registers written by the ``syscall`` instruction itself.
SYSCALL_RESULT_REGISTERS: Tuple[int, ...] = (RAX, RCX, R11)


def register_name(reg: int) -> str:
    """Human-readable name of a register id."""
    return REGISTER_NAMES[reg]
