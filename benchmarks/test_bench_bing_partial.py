"""Regenerates the Section V-A Bing partial-slice experiment.

Paper: slicing only up to load-complete marks 49.8% of load-time
instructions useful; with the full-session criteria, 50.6% of load-time
instructions are useful — browsing makes only ~1% more of the load work
pay off.
"""

import pytest

from repro.harness.reporting import bing_partial_report
from repro.profiler import pixel_criteria
from repro.profiler.stats import windowed_fraction


@pytest.fixture(scope="module")
def partial(bing_result):
    store = bing_result.store
    load_idx = store.metadata.load_complete_index
    assert load_idx is not None
    result = bing_result.profiler.slice(pixel_criteria(store).windowed(load_idx))
    return load_idx, result


def test_partial_slice_benchmark(bing_result, benchmark):
    store = bing_result.store
    load_idx = store.metadata.load_complete_index
    criteria = pixel_criteria(store).windowed(load_idx)

    def run():
        return bing_result.profiler.slice(criteria)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.slice_size() > 0


def test_load_prefix_is_substantial(bing_result):
    """Paper: the Bing load prefix is 1.7B of 10.5B instructions."""
    store = bing_result.store
    load_idx = store.metadata.load_complete_index
    assert 0.05 < load_idx / len(store) < 0.8


def test_browsing_adds_little_load_usefulness(bing_result, partial):
    """Paper: browsing makes only ~1% more load-time instructions useful."""
    load_idx, partial_result = partial
    load_only = windowed_fraction(partial_result, 0, load_idx)
    full_of_load = windowed_fraction(bing_result.pixel, 0, load_idx)
    delta = full_of_load - load_only
    assert -0.005 <= delta < 0.08, f"browsing added {delta:+.1%} to load usefulness"


def test_partial_is_subset_of_full(bing_result, partial):
    """Every record in the windowed slice must be in the full-session slice
    (the full criteria are a superset of the windowed criteria)."""
    _, partial_result = partial
    full_flags = bing_result.pixel.flags
    missing = sum(
        1
        for i, flag in enumerate(partial_result.flags)
        if flag and not full_flags[i]
    )
    assert missing == 0


def test_load_only_fraction_near_paper(bing_result, partial):
    load_idx, partial_result = partial
    load_only = windowed_fraction(partial_result, 0, load_idx)
    assert abs(load_only - 0.498) < 0.20


def test_print_bing_partial(bing_result, capsys):
    report = bing_partial_report(bing_result)
    with capsys.disabled():
        print()
        print(report)
    assert "partial-slice" in report
