"""Ablation benches: quantify each slicer mechanism's contribution.

DESIGN.md calls out two design decisions in the backward pass — control
dependences (the pending-branch mechanism) and dynamic call-site inclusion.
These benches re-slice each trace with one mechanism disabled and report
the drop, verifying each mechanism pulls real weight (i.e. the slicer is
not just a dataflow reachability pass).
"""

import pytest

from repro.profiler import (
    BackwardSlicer,
    SlicerOptions,
    pixel_criteria,
)


def _slice_with(result, **kwargs):
    slicer = BackwardSlicer(
        result.store,
        result.profiler.control_dependence_index(),
        pixel_criteria(result.store),
        options=SlicerOptions(**kwargs),
    )
    return slicer.run()


@pytest.fixture(scope="module")
def ablations(amazon_desktop_result):
    full = amazon_desktop_result.pixel
    no_control = _slice_with(amazon_desktop_result, control_dependences=False)
    no_calls = _slice_with(amazon_desktop_result, call_site_dependences=False)
    data_only = _slice_with(
        amazon_desktop_result,
        control_dependences=False,
        call_site_dependences=False,
    )
    return full, no_control, no_calls, data_only


def test_ablation_benchmark(amazon_desktop_result, benchmark):
    result = benchmark.pedantic(
        _slice_with,
        args=(amazon_desktop_result,),
        kwargs={"control_dependences": False},
        rounds=1,
        iterations=1,
    )
    assert result.slice_size() > 0


def test_control_dependences_contribute(ablations):
    full, no_control, _, _ = ablations
    assert no_control.slice_size() < full.slice_size()
    drop = (full.slice_size() - no_control.slice_size()) / full.slice_size()
    assert drop > 0.02, f"control dependences contributed only {drop:.1%}"


def test_call_sites_contribute(ablations):
    full, _, no_calls, _ = ablations
    assert no_calls.slice_size() < full.slice_size()
    drop = (full.slice_size() - no_calls.slice_size()) / full.slice_size()
    assert drop > 0.02, f"call-site dependences contributed only {drop:.1%}"


def test_ablations_are_subsets(ablations):
    full, no_control, no_calls, data_only = ablations
    for reduced in (no_control, no_calls, data_only):
        for i in range(len(full.flags)):
            if reduced.flags[i]:
                assert full.flags[i], "ablated slice must be a subset"
        # data_only is the smallest
    assert data_only.slice_size() <= min(no_control.slice_size(), no_calls.slice_size())


def test_data_flow_is_the_backbone(ablations):
    """Even without control/call mechanisms, pure dataflow reaches the
    majority of the full slice (locations dominate, as in the paper's
    liveness-based design)."""
    full, _, _, data_only = ablations
    assert data_only.slice_size() > full.slice_size() * 0.4


def test_print_ablation_table(ablations, capsys):
    full, no_control, no_calls, data_only = ablations
    rows = [
        ("full slicer", full),
        ("- control dependences", no_control),
        ("- call-site dependences", no_calls),
        ("data flow only", data_only),
    ]
    with capsys.disabled():
        print("\nAblation (Amazon desktop, pixel criteria):")
        for label, result in rows:
            print(f"  {label:<26s} {result.slice_size():>7d} records "
                  f"({result.fraction():.1%})")
