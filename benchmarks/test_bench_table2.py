"""Regenerates Table II: per-thread pixel-slice statistics, 4 benchmarks.

The benchmarked operation is the profiler's backward pass (the paper's
core contribution) over each pre-collected trace; the assertions check
that the *shape* of Table II holds: overall slice in the mid-40s on
average, compositor uniformly low, mobile rasterizers far below desktop
rasterizers, and per-column values within a reproduction tolerance of the
paper's numbers.
"""

import pytest

from repro.harness import paper
from repro.harness.reporting import table2_report
from repro.profiler import BackwardSlicer, pixel_criteria

#: tolerance (absolute percentage points) for slice-percentage comparisons
TOLERANCE = 0.15


def _slice_once(result):
    slicer = BackwardSlicer(
        result.store,
        result.profiler.control_dependence_index(),
        pixel_criteria(result.store),
    )
    return slicer.run()


@pytest.mark.parametrize(
    "fixture_name",
    ["amazon_desktop_result", "amazon_mobile_result", "google_maps_result", "bing_result"],
)
def test_backward_slicing_benchmark(fixture_name, request, benchmark):
    result = request.getfixturevalue(fixture_name)
    sliced = benchmark.pedantic(_slice_once, args=(result,), rounds=1, iterations=1)
    assert sliced.slice_size() == result.pixel.slice_size()


def test_table2_overall_slices_match_paper(table2_results):
    for name, result in table2_results.items():
        ref = paper.TABLE2[name]
        measured = result.stats.fraction
        assert abs(measured - ref.all_slice) < TOLERANCE, (
            f"{name}: overall slice {measured:.0%} vs paper {ref.all_slice:.0%}"
        )


def test_table2_average_near_paper_45(table2_results):
    avg = sum(r.stats.fraction for r in table2_results.values()) / len(table2_results)
    assert abs(avg - paper.TABLE2_AVERAGE_SLICE) < 0.10


def test_table2_main_thread_slices(table2_results):
    for name, result in table2_results.items():
        ref = paper.TABLE2[name]
        main = result.stats.thread_by_name("CrRendererMain")
        assert abs(main.fraction - ref.main_slice) < TOLERANCE + 0.05, (
            f"{name}: main slice {main.fraction:.0%} vs paper {ref.main_slice:.0%}"
        )


def test_compositor_uniformly_low(table2_results):
    """Paper: compositor slice ~34-35% across all benchmarks — the
    website-independent thread with blind backing-store upkeep."""
    fractions = []
    for name, result in table2_results.items():
        comp = result.stats.thread_by_name("Compositor")
        fractions.append(comp.fraction)
        # Below the benchmark's overall main-thread usefulness ceiling.
        assert comp.fraction < 0.50
    assert max(fractions) - min(fractions) < 0.20, "compositor should be uniform-ish"


def test_mobile_rasterizers_least_useful(table2_results):
    """Paper: the emulated 360x640 display makes mobile raster work barely
    useful (14%/13%) while desktop rasterizers sit at 54-60%."""
    mobile = table2_results["amazon_mobile"].stats.threads_by_prefix("CompositorTileWorker")
    desktop = table2_results["amazon_desktop"].stats.threads_by_prefix("CompositorTileWorker")
    mobile_avg = sum(t.fraction for t in mobile) / len(mobile)
    desktop_avg = sum(t.fraction for t in desktop) / len(desktop)
    assert mobile_avg < desktop_avg - 0.10
    assert mobile_avg < 0.40


def test_desktop_has_three_rasterizers(table2_results):
    """Paper: Amazon desktop ran three rasterizer threads, the rest two."""
    assert len(table2_results["amazon_desktop"].stats.threads_by_prefix("CompositorTileWorker")) == 3
    for name in ("amazon_mobile", "google_maps", "bing"):
        assert len(table2_results[name].stats.threads_by_prefix("CompositorTileWorker")) == 2


def test_trace_length_ordering(table2_results):
    """Paper: Bing (10.5B) > Amazon desktop (6.2B) > Maps (4.2B) > mobile (2.9B)."""
    totals = {name: r.stats.total for name, r in table2_results.items()}
    assert totals["bing"] > totals["amazon_desktop"]
    assert totals["amazon_desktop"] > totals["google_maps"]
    assert totals["google_maps"] > totals["amazon_mobile"]


def test_print_table2(table2_results, capsys):
    report = table2_report(table2_results)
    with capsys.disabled():
        print()
        print(report)
    assert "Table II" in report
