"""Columnar cold-slice benchmark: vectorized-v3 vs sequential-v2.

The tentpole claim of the UCWA3 work: answering "what fed the pixels"
from a trace *on disk* is an order of magnitude faster when the trace is
stored columnar with its slice index than when the row store is parsed
and walked record by record.  Both paths start cold — open the file,
build whatever they need, slice — and must produce byte-identical flags.

Asserted floors (CI-safe; local runs are well above them):

* cold vectorized-v3 at least **5x** faster than cold sequential-v2
  (locally ~15x on the bing trace, see EXPERIMENTS.md);
* the v3 file (index included) no larger than the v2 file.
"""

import time

import pytest

np = pytest.importorskip("numpy")

from repro.harness.experiments import cached_run
from repro.profiler import Profiler, pixel_criteria
from repro.trace.columnar import ColumnarTrace, save_columnar
from repro.trace.store import load_any_trace, load_trace, save_trace
from repro.profiler.vectorized import attach_index

#: CI floor for the cold-slice speedup; locally the ratio is ~3x higher.
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def trace_files(bing_result, tmp_path_factory):
    """The bing trace on disk in both formats (conversion timed too)."""
    store = bing_result.store
    root = tmp_path_factory.mktemp("columnar")
    v2 = root / "bing.ucwa"
    v3 = root / "bing3.ucwa"
    save_trace(store, v2)
    cols = ColumnarTrace.from_store(store)
    t0 = time.perf_counter()
    attach_index(cols)
    index_s = time.perf_counter() - t0
    save_columnar(cols, v3)
    return {"v2": v2, "v3": v3, "index_s": index_s, "records": len(store)}


def _cold_sequential(path):
    store = load_trace(path)
    return Profiler(store).slice(pixel_criteria(store), engine="sequential")


def _cold_vectorized(path):
    cols = load_any_trace(path)
    return Profiler(cols).slice(pixel_criteria(cols), engine="vectorized")


def _best_of(fn, path, rounds=3):
    best, result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn(path)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_cold_slice_speedup(trace_files, capsys):
    seq, seq_s = _best_of(_cold_sequential, trace_files["v2"], rounds=1)
    vec, vec_s = _best_of(_cold_vectorized, trace_files["v3"], rounds=3)
    assert bytes(vec.flags) == bytes(seq.flags), (
        "cold vectorized-v3 flags diverge from cold sequential-v2"
    )
    speedup = seq_s / vec_s
    with capsys.disabled():
        print(
            f"\nbing cold slice ({trace_files['records']} records): "
            f"sequential-v2 {seq_s * 1000:.0f}ms, "
            f"vectorized-v3 {vec_s * 1000:.0f}ms -> {speedup:.1f}x "
            f"(index build {trace_files['index_s'] * 1000:.0f}ms, "
            f"slice {seq.slice_size()} records)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"cold vectorized-v3 only {speedup:.2f}x faster than sequential-v2 "
        f"(floor {MIN_SPEEDUP}x): seq {seq_s:.3f}s vs vec {vec_s:.3f}s"
    )


def test_v3_file_no_larger_than_v2(trace_files, capsys):
    v2_size = trace_files["v2"].stat().st_size
    v3_size = trace_files["v3"].stat().st_size
    with capsys.disabled():
        print(
            f"\nbing file size: v2 {v2_size} B, v3+index {v3_size} B "
            f"({v3_size / v2_size:.2f}x)"
        )
    assert v3_size <= v2_size, (
        f"v3 file ({v3_size} B, slice index included) larger than "
        f"v2 ({v2_size} B)"
    )


def test_engine_stats_report_stored_index(trace_files):
    result = _cold_vectorized(trace_files["v3"])
    assert result.engine_stats["engine"] == "vectorized"
    assert result.engine_stats["stored_index"] is True
    assert result.engine_stats["records"] == trace_files["records"]
