"""Regenerates Figure 5: categorization of potentially unnecessary
computations via namespace analysis of non-slice instructions."""

import pytest

from repro.harness import paper
from repro.harness.reporting import figure5_report
from repro.profiler.categorize import categorize_unnecessary


def test_categorization_benchmark(bing_result, benchmark):
    dist = benchmark.pedantic(
        categorize_unnecessary,
        args=(bing_result.store, bing_result.pixel),
        rounds=1,
        iterations=1,
    )
    assert dist.total_unnecessary > 0


def test_javascript_is_dominant_category(table2_results):
    """Paper: 'the most notable category is processing of JavaScript'."""
    for name, result in table2_results.items():
        assert result.categories.dominant_category() == "JavaScript", (
            f"{name}: dominant is {result.categories.dominant_category()}"
        )


def test_categorized_fraction_in_paper_band(table2_results):
    """Paper: only 53-74% of non-slice instructions were categorizable."""
    for name, result in table2_results.items():
        fraction = result.categories.categorized_fraction
        ref = paper.FIGURE5_CATEGORIZED_FRACTION[name]
        assert abs(fraction - ref) < 0.20, (
            f"{name}: categorized {fraction:.0%} vs paper {ref:.0%}"
        )


def test_all_categories_present(table2_results):
    """Every paper category should appear with non-trivial mass somewhere."""
    for category in ("JavaScript", "Debugging", "IPC", "Multi-threading",
                     "Compositing", "Graphics", "CSS", "Other"):
        assert any(
            result.categories.counts.get(category, 0) > 0
            for result in table2_results.values()
        ), f"category {category} absent everywhere"


def test_bing_js_share_smaller_than_load_only_benchmarks(table2_results):
    """Paper: in Bing (load+browse) the JavaScript share is smaller than in
    the load-only benchmarks — loading is the JS-intensive phase."""
    bing_js = table2_results["bing"].categories.share("JavaScript")
    load_only_js = [
        table2_results[name].categories.share("JavaScript")
        for name in ("amazon_desktop", "amazon_mobile", "google_maps")
    ]
    assert bing_js <= max(load_only_js) + 0.02


def test_shares_sum_to_one(table2_results):
    for result in table2_results.values():
        total = sum(share for _, share in result.categories.shares())
        assert abs(total - 1.0) < 1e-9


def test_debugging_detected_as_waste(table2_results):
    """Paper: default trace-event machinery is unnecessary by construction."""
    for name, result in table2_results.items():
        assert result.categories.share("Debugging") > 0.01, name


def test_print_figure5(table2_results, capsys):
    report = figure5_report(table2_results)
    with capsys.disabled():
        print()
        print(report)
    assert "Figure 5" in report
