"""Sequential-vs-parallel backward-slicer benchmark.

Records wall-clock timings of both engines over the wiki/amazon/bing
workload traces and prints the speedup report.  The equality assertion
(parallel flags byte-identical to sequential) always runs; the speedup
assertion only applies when the host actually has the cores to
parallelize onto — on a 1-CPU container the worker processes serialize
and the parallel engine's fixpoint re-execution makes it strictly slower,
which the report shows honestly rather than hiding.
"""

import os
import time

import pytest

from repro.harness.experiments import cached_run
from repro.harness.reporting import parallel_speedup_report
from repro.profiler import BackwardSlicer, ParallelSlicer, pixel_criteria

#: workers used for the parallel timings (the acceptance configuration)
WORKERS = int(os.environ.get("REPRO_SLICER_WORKERS", "4"))

WORKLOADS = ("wiki_article", "amazon_desktop", "bing")

#: filled by the per-workload benches, consumed by the summary test
TIMINGS: dict = {}


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _run_both(result):
    store = result.store
    cdi = result.profiler.control_dependence_index()
    criteria = pixel_criteria(store)
    seq, seq_s = _time(lambda: BackwardSlicer(store, cdi, criteria).run())
    slicer = ParallelSlicer(store, cdi, criteria, workers=WORKERS)
    par, par_s = _time(slicer.run)
    return seq, par, seq_s, par_s


@pytest.mark.parametrize("name", WORKLOADS)
def test_parallel_engine_benchmark(name, benchmark):
    result = cached_run(name)
    seq, par, seq_s, par_s = benchmark.pedantic(
        _run_both, args=(result,), rounds=1, iterations=1
    )
    assert bytes(par.flags) == bytes(seq.flags), (
        f"{name}: parallel flags diverge from sequential"
    )
    TIMINGS[name] = {
        "records": len(result.store),
        "sequential_s": seq_s,
        "parallel_s": par_s,
        "workers": WORKERS,
        **{k: par.engine_stats[k] for k in ("epochs", "epoch_runs", "rounds",
                                            "pass_throughs")},
    }


def test_speedup_summary(capsys):
    assert set(TIMINGS) == set(WORKLOADS), "per-workload benches must run first"
    with capsys.disabled():
        print()
        print(parallel_speedup_report(TIMINGS))
    largest = max(TIMINGS, key=lambda n: TIMINGS[n]["records"])
    t = TIMINGS[largest]
    speedup = t["sequential_s"] / t["parallel_s"]
    if _cpus() >= 4 and WORKERS >= 4:
        assert speedup >= 1.5, (
            f"{largest}: parallel speedup {speedup:.2f}x < 1.5x at "
            f"{t['workers']} workers on {_cpus()} CPUs"
        )
    else:
        pytest.skip(
            f"host has {_cpus()} usable CPU(s); recorded "
            f"{largest} speedup {speedup:.2f}x without asserting"
        )
