"""Cold-vs-warm benchmark of the profiling service's result cache.

Submits each workload to an in-process daemon twice: the cold submit
runs the workload and slices it inside a supervised worker process, the
warm submit must be answered from the content-addressed cache without
invoking the slicer at all.  The assertion is deliberately loose (warm
<= 10% of cold) because the real observed gap is orders of magnitude —
the smoke runs in EXPERIMENTS.md measure 400-3000x.
"""

import tempfile
import time

import pytest

from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.server import ProfilingServer

WORKLOADS = ("wiki_article", "bing")

#: filled by the per-workload benches, consumed by the summary test
TIMINGS: dict = {}


@pytest.fixture(scope="module")
def service():
    with tempfile.TemporaryDirectory(prefix="repro-svc-bench-") as tmp:
        server = ProfilingServer(f"{tmp}/s.sock", f"{tmp}/cache", workers=2)
        server.start()
        try:
            yield ServiceClient(server.socket_path)
        finally:
            server.close()


def _submit_timed(client, spec):
    start = time.perf_counter()
    response = client.submit(spec, wait=True)
    return response, time.perf_counter() - start


@pytest.mark.parametrize("name", WORKLOADS)
def test_service_cache_benchmark(name, service, benchmark):
    spec = JobSpec(workload=name)

    def cold_then_warm():
        cold, cold_s = _submit_timed(service, spec)
        warm, warm_s = _submit_timed(service, spec)
        return cold, warm, cold_s, warm_s

    cold, warm, cold_s, warm_s = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )
    TIMINGS[name] = (cold_s, warm_s)

    assert cold["outcome"] == "ok"
    assert warm["outcome"] in ("cache-memory", "cache-disk")
    assert warm["result"]["flags_sha256"] == cold["result"]["flags_sha256"]
    assert warm_s <= cold_s * 0.10, (
        f"{name}: warm submit took {warm_s:.3f}s vs cold {cold_s:.3f}s — "
        f"the cache hit must cost at most 10% of the cold run"
    )


def test_report(service):
    assert set(TIMINGS) == set(WORKLOADS), "run the per-workload benches first"
    print()
    print("service result cache: cold vs warm submit")
    print(f"{'workload':<16s} {'cold (s)':>9s} {'warm (s)':>9s} {'speedup':>9s}")
    for name, (cold_s, warm_s) in TIMINGS.items():
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(f"{name:<16s} {cold_s:>9.3f} {warm_s:>9.3f} {speedup:>8.1f}x")
    stats = service.stats()
    cache = stats["cache"]
    print(
        f"cache: {cache['memory_hits']} memory + {cache['disk_hits']} disk hits, "
        f"hit rate {cache['hit_rate']:.0%}"
    )
