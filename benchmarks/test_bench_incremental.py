"""Incremental vs. full re-slicing on the multi-frame workloads.

EXPERIMENTS.md's incremental table comes from here: for each of the
three animation/streaming workloads (ticker, livefeed, scrollseq) every
frame is sliced twice — cold sequential and incrementally against the
shared checkpoint — asserting byte-identity (flags *and* unnecessary
categories) and measuring how many records the steady-state incremental
pass actually touches.  The headline claim this guards: once the
checkpoint is warm, slicing frame ``N+1`` costs a small fraction of a
full re-slice.
"""

import pytest

from repro.browser import BrowserEngine
from repro.profiler import Profiler
from repro.profiler.categorize import categorize_unnecessary
from repro.profiler.redundancy import frame_pixel_criteria
from repro.workloads import benchmark as load_benchmark

WORKLOADS = ("ticker", "livefeed", "scrollseq")

#: frames after this index must hit the memoized steady state
WARMUP_FRAMES = 3

#: per-workload steady-state budget for records touched per frame slice,
#: as a fraction of a full re-slice.  Repetitive animation (ticker,
#: livefeed) repeats its dependence frontiers, so memos hit and frames
#: cost ~10-16% (the CI guard is the 50% ceiling).  scrollseq is the
#: honest outlier: every scroll frame reads *different* scroll-offset
#: cells produced during load, so earlier regions' flags genuinely
#: change per frame and byte-identity forces their re-run — reuse is
#: bounded to the unaffected regions.
STEADY_STATE_BUDGET = {"ticker": 0.5, "livefeed": 0.5, "scrollseq": 1.0}


def _trace(name):
    bench = load_benchmark(name)
    engine = BrowserEngine(bench.config)
    engine.load_page(bench.page)
    engine.run_session(bench.actions)
    return engine.trace_store()


@pytest.fixture(scope="module", params=WORKLOADS)
def workload_frames(request):
    """(name, store, per-frame sequential + incremental results)."""
    store = _trace(request.param)
    profiler = Profiler(store)
    frames = []
    for span in store.frame_spans():
        criteria = frame_pixel_criteria(store, span)
        seq = profiler.slice(criteria, engine="sequential")
        inc = profiler.slice(criteria, engine="incremental")
        frames.append((span, seq, inc))
    assert len(frames) >= 5, f"{request.param}: expected a frame animation"
    return request.param, store, frames


def test_per_frame_byte_identity(workload_frames):
    name, store, frames = workload_frames
    for span, seq, inc in frames:
        assert bytes(inc.flags) == bytes(seq.flags), (
            f"{name} frame {span.frame_id}: incremental != sequential"
        )
        seq_cats = categorize_unnecessary(store, seq)
        inc_cats = categorize_unnecessary(store, inc)
        assert inc_cats.counts == seq_cats.counts, (
            f"{name} frame {span.frame_id}: category split diverged"
        )


def test_steady_state_touches_fraction(workload_frames):
    name, _store, frames = workload_frames
    budget = STEADY_STATE_BUDGET[name]
    fractions = []
    for span, _seq, inc in frames[WARMUP_FRAMES:]:
        stats = inc.engine_stats
        fraction = stats["records_touched"] / stats["records_total"]
        fractions.append(fraction)
        assert fraction <= budget, (
            f"{name} frame {span.frame_id}: incremental touched "
            f"{fraction:.1%} of the trace (budget {budget:.0%})"
        )
        assert stats["memo_exact"] + stats["memo_pass_through"] > 0
    print(
        f"\n{name}: steady-state incremental touches "
        f"{min(fractions):.1%}-{max(fractions):.1%} of the trace "
        f"across {len(fractions)} frames"
    )


def test_incremental_steady_state_benchmark(benchmark):
    """Wall-clock of one steady-state frame slice against a warm
    checkpoint (compare with ``test_full_reslice_benchmark``)."""
    store = _trace("ticker")
    profiler = Profiler(store)
    spans = store.frame_spans()
    for span in spans[:-1]:  # warm the checkpoint
        profiler.slice(frame_pixel_criteria(store, span), engine="incremental")
    last = frame_pixel_criteria(store, spans[-1])

    result = benchmark.pedantic(
        lambda: profiler.slice(last, engine="incremental"),
        rounds=3,
        iterations=1,
    )
    assert result.slice_size() > 0


def test_full_reslice_benchmark(benchmark):
    store = _trace("ticker")
    profiler = Profiler(store)
    last = frame_pixel_criteria(store, store.frame_spans()[-1])
    result = benchmark.pedantic(
        lambda: profiler.slice(last, engine="sequential"),
        rounds=3,
        iterations=1,
    )
    assert result.slice_size() > 0
