"""Optimizer payoff on Bing: the transformed session must do at least
10% less traced work while rendering byte-identical frames.

This is the headline claim of the proof-carrying waste eliminator (see
docs/optimizer.md): the paper's ~50% useless-instruction fractions leave
enough statically-provable waste that even a conservative rewriter wins
double digits on a real workload.
"""

import pytest

from repro.jsstatic.compare import benchmark_sources
from repro.optimize import optimize_benchmark, plan_scripts
from repro.profiler import (
    image_attribution,
    image_region_cells,
    script_attribution,
    script_region_cells,
)
from repro.workloads import benchmark as get_benchmark


@pytest.fixture(scope="module")
def bing_optimized():
    return optimize_benchmark("bing")


def test_planning_benchmark(bing_result, benchmark):
    """Static planning alone (no re-execution) against cached evidence."""
    bench = get_benchmark("bing")
    touches = script_attribution(
        bing_result.store, bing_result.pixel,
        script_region_cells(bing_result.engine),
    )
    image_touches = image_attribution(
        bing_result.store, bing_result.pixel,
        image_region_cells(bing_result.engine),
    )
    sources = dict(benchmark_sources(bench))
    late = [url for batch in bench.late_scripts.values() for url in batch]

    def run():
        return plan_scripts(
            "bing", sources, pixel_touches=touches, late_urls=late,
            image_touches=image_touches,
        )

    plan = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plan.applied()


def test_bing_saves_at_least_ten_percent(bing_optimized):
    assert bing_optimized.records_saved_fraction >= 0.10, (
        f"expected >=10% record reduction on bing, got "
        f"{bing_optimized.records_saved_fraction:.1%}"
    )


def test_bing_framebuffers_byte_identical(bing_optimized):
    bing_optimized.check()
    assert bing_optimized.original_digests == bing_optimized.transformed_digests
    assert bing_optimized.tripwire_hits == []


def test_bing_every_applied_rewrite_is_proved(bing_optimized):
    for rewrite in bing_optimized.plan.applied():
        assert rewrite.proof.category.value in (
            "proven-safe", "dynamically-safe"
        )
        assert rewrite.proof.evidence
