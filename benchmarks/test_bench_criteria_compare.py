"""Regenerates the Section V criteria-comparison claim: slicing based on
either pixels buffer or system calls leads to almost the same slice (the
syscall slice is inclusive of the pixel slice)."""

import pytest

from repro.profiler import combined_criteria, pixel_criteria


@pytest.fixture(scope="module")
def both_slices(amazon_desktop_result):
    result = amazon_desktop_result
    pixels = result.pixel
    syscalls = result.profiler.slice(combined_criteria(result.store))
    return result, pixels, syscalls


def test_syscall_slice_benchmark(amazon_desktop_result, benchmark):
    result = amazon_desktop_result
    criteria = combined_criteria(result.store)
    sliced = benchmark.pedantic(
        result.profiler.slice, args=(criteria,), rounds=1, iterations=1
    )
    assert sliced.slice_size() > 0


def test_syscall_slice_is_superset(both_slices):
    """Paper IV-C: 'the slice computed by this set of slicing criteria must
    be inclusive of that of the pixel-based criteria'."""
    result, pixels, syscalls = both_slices
    missing = sum(
        1
        for i in range(len(result.store))
        if pixels.flags[i] and not syscalls.flags[i]
    )
    assert missing == 0


def test_slices_almost_the_same(both_slices):
    """Paper V: 'slicing based on either pixels buffer or system calls
    leads to almost the same slice'."""
    _, pixels, syscalls = both_slices
    assert syscalls.fraction() - pixels.fraction() < 0.12, (
        f"syscall slice {syscalls.fraction():.1%} vs pixel {pixels.fraction():.1%}"
    )


def test_extra_syscall_records_are_io_related(both_slices):
    """The syscall-only extra records should concentrate in network/IPC
    output paths (beacons, metrics flushes), not rendering."""
    result, pixels, syscalls = both_slices
    store = result.store
    extra_by_fn = {}
    for i, rec in enumerate(store.forward()):
        if syscalls.flags[i] and not pixels.flags[i]:
            name = store.symbols.name(rec.fn)
            extra_by_fn[name] = extra_by_fn.get(name, 0) + 1
    extra_total = sum(extra_by_fn.values())
    assert extra_total > 0, "syscall criteria must add something (beacons etc.)"
    io_ish = sum(
        count
        for name, count in extra_by_fn.items()
        if name.startswith(("net::", "ipc::", "base::", "v8::js::metrics", "cc::Display"))
    )
    assert io_ish / extra_total > 0.25
