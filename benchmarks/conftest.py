"""Shared fixtures: each workload is traced once per session and reused."""

import pytest

from repro.harness.experiments import cached_run


@pytest.fixture(scope="session")
def amazon_desktop_result():
    return cached_run("amazon_desktop")


@pytest.fixture(scope="session")
def amazon_mobile_result():
    return cached_run("amazon_mobile")


@pytest.fixture(scope="session")
def google_maps_result():
    return cached_run("google_maps")


@pytest.fixture(scope="session")
def bing_result():
    return cached_run("bing")


@pytest.fixture(scope="session")
def table2_results(
    amazon_desktop_result, amazon_mobile_result, google_maps_result, bing_result
):
    return {
        "amazon_desktop": amazon_desktop_result,
        "amazon_mobile": amazon_mobile_result,
        "google_maps": google_maps_result,
        "bing": bing_result,
    }


@pytest.fixture(scope="session")
def browse_results():
    return {
        "amazon_desktop": cached_run("amazon_desktop_browse"),
        "bing": cached_run("bing"),
        "google_maps": cached_run("google_maps_browse"),
    }


@pytest.fixture(scope="session")
def load_results(amazon_desktop_result, google_maps_result):
    return {
        "amazon_desktop": amazon_desktop_result,
        "bing": cached_run("bing_load_only"),
        "google_maps": google_maps_result,
    }
