"""Regenerates Table I: unused JavaScript and CSS code bytes.

Benchmarks the coverage computation and checks the paper's shape: roughly
40-60% of downloaded JS+CSS bytes unused after load; browsing leaves most
of it still unused (the fraction drops but stays large), and Bing/Maps
download additional bytes while browsing.
"""

import pytest

from repro.harness.reporting import table1_report


def _coverage(result):
    return (result.code_unused_bytes(), result.code_total_bytes())


def test_coverage_computation_benchmark(load_results, benchmark):
    result = load_results["amazon_desktop"]
    unused, total = benchmark.pedantic(_coverage, args=(result,), rounds=1, iterations=1)
    assert 0 < unused < total


def test_unused_fraction_in_paper_band_at_load(load_results):
    """Paper: 49-58% unused after load."""
    for name, result in load_results.items():
        fraction = result.code_unused_fraction()
        assert 0.35 < fraction < 0.75, f"{name}: unused fraction {fraction:.0%}"


def test_browsing_reduces_unused_fraction(load_results, browse_results):
    """Paper: browsing uses some more code (58->54%, 52->40%, 49->43%)."""
    for name in load_results:
        load_fraction = load_results[name].code_unused_fraction()
        browse_fraction = browse_results[name].code_unused_fraction()
        assert browse_fraction <= load_fraction + 0.01, (
            f"{name}: browse {browse_fraction:.0%} should not exceed load "
            f"{load_fraction:.0%}"
        )


def test_browsing_still_leaves_much_unused(browse_results):
    """Paper: even after browsing, 40-54% stays unused."""
    for name, result in browse_results.items():
        assert result.code_unused_fraction() > 0.30


def test_bing_and_maps_download_more_while_browsing(load_results, browse_results):
    """Paper: 'more code bytes are downloaded while browsing' for Bing and
    Google Maps (lazy-loaded scripts), adding to the total."""
    for name in ("bing", "google_maps"):
        assert browse_results[name].code_total_bytes() > load_results[name].code_total_bytes()


def test_amazon_total_stable_while_browsing(load_results, browse_results):
    """Paper: Amazon's total stays at 1.6 MB in both conditions."""
    load_total = load_results["amazon_desktop"].code_total_bytes()
    browse_total = browse_results["amazon_desktop"].code_total_bytes()
    assert load_total == browse_total


def test_print_table1(load_results, browse_results, capsys):
    report = table1_report(load_results, browse_results)
    with capsys.disabled():
        print()
        print(report)
    assert "Table I" in report
