"""Regenerates Figure 2: main-thread CPU utilization over an amazon.com
load+browse session (load spike, then smaller interaction spikes)."""

import pytest

from repro.analysis.utilization import busy_fraction, find_spikes
from repro.browser.context import MAIN_THREAD
from repro.harness.reporting import figure2_report


@pytest.fixture(scope="module")
def amazon_browse(browse_results):
    return browse_results["amazon_desktop"]


def test_utilization_series_benchmark(amazon_browse, benchmark):
    series = benchmark.pedantic(
        amazon_browse.utilization, args=(MAIN_THREAD,), rounds=1, iterations=1
    )
    assert series, "expected a non-empty utilization series"


def test_load_spike_exists_at_start(amazon_browse):
    """The page load produces the first and most intense activity burst."""
    series = amazon_browse.utilization(MAIN_THREAD)
    spikes = find_spikes(series)
    assert spikes, "expected at least the load spike"
    assert spikes[0].start_s < 1.0, "load activity should start immediately"
    assert max(s.peak for s in spikes[:3]) > 0.5


def test_interaction_spikes_after_load(amazon_browse):
    """Each user action (scrolls, photo-roll clicks, menu) causes a spike.

    Scrolls are compositor-handled, so main-thread spikes come from the
    two carousel clicks and the menu open, plus timers.
    """
    series = amazon_browse.utilization(MAIN_THREAD)
    spikes = find_spikes(series)
    load_end = spikes[0].end_s if spikes else 0.0
    later = [s for s in spikes if s.start_s > load_end + 0.5]
    assert len(later) >= 2, f"expected interaction spikes, got {len(later)}"


def test_idle_gaps_between_interactions(amazon_browse):
    """User think time shows as idle valleys (utilization ~0)."""
    series = amazon_browse.utilization(MAIN_THREAD)
    idle_buckets = sum(1 for _, v in series if v < 0.05)
    assert idle_buckets > len(series) * 0.3, "most of a browsing session is idle"


def test_mean_utilization_moderate(amazon_browse):
    series = amazon_browse.utilization(MAIN_THREAD)
    mean = busy_fraction(series)
    assert 0.02 < mean < 0.60


def test_print_figure2(amazon_browse, capsys):
    report = figure2_report(amazon_browse)
    with capsys.disabled():
        print()
        print(report)
    assert "Figure 2" in report
