"""Regenerates Figure 4 (a-h): slicing percentage over the backward pass,
for all threads and for the main thread only, on all four benchmarks."""

import pytest

from repro.harness.reporting import figure4_report
from repro.profiler.stats import timeline_series


def _series_pair(result):
    return (
        timeline_series(result.pixel),
        timeline_series(result.pixel, main=True),
    )


def test_timeline_extraction_benchmark(bing_result, benchmark):
    all_series, main_series = benchmark.pedantic(
        _series_pair, args=(bing_result,), rounds=1, iterations=1
    )
    assert all_series and main_series


def _variability(series):
    values = [y for _, y in series if y > 0]
    if not values:
        return 0.0
    return max(values) - min(values)


@pytest.mark.parametrize(
    "fixture_name",
    ["amazon_desktop_result", "amazon_mobile_result", "google_maps_result", "bing_result"],
)
def test_fractions_stay_bounded(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    for series in _series_pair(result):
        assert all(0.0 <= y <= 1.0 for _, y in series)
        xs = [x for x, _ in series]
        assert xs == sorted(xs)


@pytest.mark.parametrize(
    "fixture_name",
    ["amazon_desktop_result", "google_maps_result", "bing_result"],
)
def test_main_thread_varies_more_than_all(fixture_name, request):
    """Paper: 'the range of changes in the slicing percentage of the main
    thread is more in contrast to all threads' — useful/useless regions
    are more conspicuous on the main thread."""
    result = request.getfixturevalue(fixture_name)
    all_series, main_series = _series_pair(result)
    # Ignore the noisy first few samples (tiny denominators).
    assert _variability(main_series[3:]) >= _variability(all_series[3:]) * 0.8


def test_bing_main_shows_interaction_increases(bing_result):
    """Paper Figure 4h: the Bing main-thread curve jumps at the points
    corresponding to user interactions, then decays; a large increase
    appears near the end of the x-axis (the load)."""
    _, main_series = _series_pair(bing_result)
    values = [y for _, y in main_series]
    n = len(values)
    assert n > 10
    increases = sum(
        1 for i in range(max(1, n // 10), n - 1) if values[i + 1] > values[i] + 0.005
    )
    assert increases >= 2, "expected jumps at user interactions"
    # The load region (end of the backward pass) lifts the curve.
    assert values[-1] > values[n // 4] - 0.05


def test_converges_to_overall_fraction(table2_results):
    """The final timeline sample equals the overall slice fraction."""
    for name, result in table2_results.items():
        all_series = timeline_series(result.pixel)
        final = all_series[-1][1]
        assert abs(final - result.stats.fraction) < 0.02, name


def test_print_figure4(table2_results, capsys):
    report = figure4_report(table2_results)
    with capsys.disabled():
        print()
        print(report)
    assert "Figure 4" in report
