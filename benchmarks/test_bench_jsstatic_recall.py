"""Regression guard on static dead-function quality for the paper workloads.

Precision is the soundness contract: exactly 1.00 everywhere, no
executed function ever called dead.  Recall is floored at the PR-2
name-match baseline per workload (amazon_desktop 0.80, amazon_mobile
0.75, google_maps 0.93, bing 0.91), so the interprocedural value-flow
analysis can only improve it — a change that silently drops resolution
back to the REF over-approximation fails here before it lands.
"""

import pytest

from repro.jsstatic.compare import compare_benchmark

#: PR-2 edge-fixpoint recall per workload — the floor value flow must beat
BASELINE_RECALL = {
    "amazon_desktop": 0.80,
    "amazon_mobile": 0.75,
    "google_maps": 0.93,
    "bing": 0.91,
}


@pytest.fixture(scope="module")
def comparisons(table2_results):
    return {
        name: compare_benchmark(name, engine=result.engine)
        for name, result in table2_results.items()
    }


@pytest.mark.parametrize("name", sorted(BASELINE_RECALL))
def test_precision_is_exactly_one(comparisons, name):
    cmp = comparisons[name]
    assert cmp.is_sound, f"{name}: false dead {cmp.false_dead}"
    assert cmp.precision == 1.0


@pytest.mark.parametrize("name", sorted(BASELINE_RECALL))
def test_recall_no_worse_than_pr2_baseline(comparisons, name):
    cmp = comparisons[name]
    floor = BASELINE_RECALL[name]
    assert cmp.recall >= floor, (
        f"{name}: recall {cmp.recall:.2f} fell below the PR-2 "
        f"baseline {floor:.2f}"
    )


def test_valueflow_carries_the_paper_workloads(comparisons):
    """The resolved analysis (not the fallback) must drive liveness."""
    for name, cmp in comparisons.items():
        flow = cmp.analysis.graph.valueflow
        assert flow is not None and flow.ok, (
            f"{name}: value flow bailed out"
            + (f" ({flow.reason})" if flow is not None else "")
        )


def test_recall_improves_on_library_heavy_workloads(comparisons):
    """The tentpole claim: strictly above baseline on >= 2 of the three."""
    improved = [
        name
        for name in ("amazon_desktop", "bing", "google_maps")
        if comparisons[name].recall > BASELINE_RECALL[name]
    ]
    assert len(improved) >= 2, f"recall improved only on {improved}"
