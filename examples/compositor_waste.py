#!/usr/bin/env python
"""Compositor waste: backing stores of layers nobody ever sees.

The paper calls out Chromium's compositing design pitfall: every composited
layer gets its own backing store and gets rastered, whether or not it is
ever visible — e.g. carousel slides stacked under the front slide.  This
example loads the Amazon desktop workload (three opaque stacked slides)
and measures, per layer, how much raster work was spent vs how many of its
tiles were ever presented.
"""

from collections import defaultdict

from repro.harness.experiments import run_benchmark
from repro.workloads import benchmark


def main() -> None:
    print("running the Amazon desktop benchmark...")
    result = run_benchmark(benchmark("amazon_desktop"))
    store = result.store
    flags = result.pixel.flags
    compositor = result.engine.compositor

    print(f"\nlayer tree ({len(compositor.layers)} composited layers):")
    for layer in compositor.layers:
        owner = layer.paint.owner.element_id if layer.paint.owner is not None else "(root)"
        tiles = list(layer.tiles.values())
        rastered = sum(1 for t in tiles if t.rastered)
        presented = sum(1 for t in tiles if t.marked)
        print(
            f"  layer {layer.paint.layer_id:>2d} owner={owner:<12s} "
            f"z={layer.paint.z_index:>2d} opaque={str(layer.paint.opaque):<5s} "
            f"tiles={len(tiles):>3d} rastered={rastered:>3d} presented={presented:>3d}"
        )

    # Raster-thread instruction accounting per useless/useful split.
    raster_tids = result.engine.ctx.raster_thread_ids()
    per_thread = defaultdict(lambda: [0, 0])
    for i, rec in enumerate(store.forward()):
        if rec.tid in raster_tids:
            per_thread[rec.tid][0] += 1
            if flags[i]:
                per_thread[rec.tid][1] += 1
    print("\nraster thread usefulness:")
    for tid, (total, useful) in sorted(per_thread.items()):
        name = store.metadata.thread_names[tid]
        print(f"  {name:<24s} {useful:>6d}/{total:>6d} useful ({useful / total:.0%})")

    # The occluded slides' raster is the headline waste.
    occluded_layers = [
        layer
        for layer in compositor.layers
        if layer.paint.owner is not None
        and any(t.rastered for t in layer.tiles.values())
        and not any(t.marked for t in layer.tiles.values())
    ]
    print(f"\nfully-occluded-but-rastered layers: {len(occluded_layers)}")
    for layer in occluded_layers:
        print(f"  {layer.paint.owner.element_id}: backing store rastered, never shown")
    print("\npaper's takeaway: 'more smart compositing algorithms could "
          "provide both performance and energy efficiency.'")


if __name__ == "__main__":
    main()
