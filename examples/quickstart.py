#!/usr/bin/env python
"""Quickstart: load a small page, slice its trace, inspect the waste.

Runs the full pipeline on a self-contained page, computes the pixel-based
backward slice, and prints the headline numbers the paper reports: what
fraction of executed instructions actually contributed to displayed
pixels, per thread, and what the rest was doing.
"""

from repro.browser import BrowserEngine, EngineConfig, PageSpec
from repro.profiler import Profiler, pixel_criteria

HTML = """<!DOCTYPE html>
<html>
<head>
  <title>Quickstart</title>
  <link rel="stylesheet" href="style.css">
</head>
<body>
  <div class="hero" id="hero">Welcome!</div>
  <div class="card">First card with some text content.</div>
  <div class="card">Second card, equally exciting.</div>
  <script src="app.js"></script>
</body>
</html>
"""

CSS = """
body  { margin: 0; background-color: #ffffff; }
.hero { height: 200px; background-color: #131921; color: white; }
.card { width: 260px; height: 120px; background-color: #eeeeee; margin: 8px;
        display: inline-block; }
.never-used { width: 500px; height: 300px; background-color: red; }
"""

JS = """
function decorate() {
    var hero = document.getElementById('hero');
    hero.textContent = 'Welcome! Rendered at ' + Math.floor(Date.now());
}
function neverCalled() {
    var waste = [];
    for (var i = 0; i < 100; i++) { waste.push(i * i); }
    return waste;
}
var analytics = { pings: 0 };
function track() {
    analytics.pings += 1;
    navigator.sendBeacon('https://stats.example/q', 'p=' + analytics.pings);
}
decorate();
track();
"""


def main() -> None:
    engine = BrowserEngine(EngineConfig(viewport_width=800, viewport_height=600))
    engine.load_page(
        PageSpec(
            url="https://quickstart.example/",
            html=HTML,
            stylesheets={"style.css": CSS},
            scripts={"app.js": JS},
        )
    )

    store = engine.trace_store()
    print(f"trace collected: {len(store)} instructions, "
          f"{len(store.thread_ids())} threads")

    profiler = Profiler(store)
    result = profiler.slice(pixel_criteria(store))
    stats = profiler.statistics(result)
    print(f"\npixel slice: {stats.fraction:.1%} of instructions were useful "
          f"for the displayed pixels")
    for thread in stats.threads:
        print(f"  {thread.name:<28s} {thread.total:>7d} instrs, "
              f"{thread.fraction:>5.1%} useful")

    categories = profiler.categorize(result)
    print(f"\nunnecessary computation by category "
          f"(categorized {categories.categorized_fraction:.0%}):")
    for category, share in categories.shares():
        if share > 0:
            print(f"  {category:<16s} {share:6.1%}")

    coverage = engine.interp.coverage
    print(f"\nJS coverage: {coverage.unused_bytes()} of {coverage.total_bytes()} "
          f"bytes never executed "
          f"({coverage.unused_bytes() / coverage.total_bytes():.0%})")


if __name__ == "__main__":
    main()
