#!/usr/bin/env python
"""JS deferral audit: which script work could move off the load path?

The paper's conclusion: load time is the most JS-intensive phase, and much
of that processing "could be deferred to a later time, i.e., when they are
actually needed".  This example runs the Amazon desktop benchmark and uses
:mod:`repro.analysis.deferral` to rank the opportunities:

* executed-but-invisible load-phase work -> idle-time deferral candidates;
* never-executed script bytes -> lazy-download / code-splitting candidates.
"""

from repro.analysis.deferral import analyze_deferral, render_report
from repro.harness.experiments import run_benchmark
from repro.workloads import benchmark


def main() -> None:
    print("running the Amazon desktop benchmark...")
    result = run_benchmark(benchmark("amazon_desktop"))

    print()
    print(render_report(analyze_deferral(result)))

    print()
    print("JavaScript-only view (the paper's main deferral suggestion):")
    js_report = analyze_deferral(result, prefix_filter="v8::")
    total_js = sum(c.executed_at_load for c in js_report.candidates)
    wasted_js = sum(c.wasted_at_load for c in js_report.candidates)
    print(
        f"  load-phase JS: {total_js} instructions, "
        f"{wasted_js / total_js:.0%} never influenced a pixel"
    )
    for candidate in js_report.top_candidates(limit=8, min_waste=100):
        print(
            f"  {candidate.wasted_at_load:>6d} wasted "
            f"({candidate.waste_fraction:.0%})  {candidate.function}"
        )

    print(
        "\npaper's takeaway: deferring JS processing to when it is really "
        "needed would provide better performance at load."
    )


if __name__ == "__main__":
    main()
