#!/usr/bin/env python
"""Custom slicing criteria: "what computed THIS element's pixels?"

The paper's criteria are browser-independent (pixels buffer, syscalls),
but the slicer accepts any *(program point, variables)* pairs.  This
example slices on a single element's layout cells to answer: which
instructions — from network bytes through JS and style — determined where
the element ended up on screen?
"""

from repro.browser import BrowserEngine, EngineConfig, PageSpec
from repro.profiler import Profiler, custom_criteria, pixel_criteria
from repro.profiler.stats import per_function_fractions

HTML = """<!DOCTYPE html>
<html>
<head><link rel="stylesheet" href="s.css"></head>
<body>
  <div id="banner">Breaking news banner</div>
  <div id="content">Main article content goes here.</div>
  <div id="sidebar">Sidebar stuff nobody reads.</div>
  <script src="a.js"></script>
</body>
</html>
"""

CSS = """
#banner  { height: 48px; background-color: #c00000; color: white; }
#content { width: 70%; background-color: #ffffff; }
#sidebar { width: 25%; background-color: #f4f4f4; }
"""

JS = """
// The banner's height is adjusted by script: this JS should appear in the
// banner's slice, but not in the sidebar's.
var urgency = 3;
var h = 40 + urgency * 8;
document.getElementById('banner').style.height = '' + h + 'px';
"""


def main() -> None:
    engine = BrowserEngine(EngineConfig(viewport_width=1000, viewport_height=700))
    engine.load_page(
        PageSpec(url="https://news.example/", html=HTML,
                 stylesheets={"s.css": CSS}, scripts={"a.js": JS})
    )
    store = engine.trace_store()
    profiler = Profiler(store)

    banner = engine.document.get_element_by_id("banner")
    sidebar = engine.document.get_element_by_id("sidebar")

    # Criterion: the banner's geometry at the end of the trace.
    banner_criteria = custom_criteria(
        "banner-geometry", ((len(store) - 1, (banner.cell("layout:geom"),)),)
    )
    banner_slice = profiler.slice(banner_criteria)

    sidebar_criteria = custom_criteria(
        "sidebar-geometry", ((len(store) - 1, (sidebar.cell("layout:geom"),)),)
    )
    sidebar_slice = profiler.slice(sidebar_criteria)

    print(f"banner-geometry slice: {banner_slice.slice_size()} instructions")
    print(f"sidebar-geometry slice: {sidebar_slice.slice_size()} instructions")

    def js_instructions(sliced):
        return sum(
            1
            for i in sliced.indices()
            if store.symbols.name(store.records()[i].fn).startswith("v8::")
        )

    banner_js = js_instructions(banner_slice)
    sidebar_js = js_instructions(sidebar_slice)
    print(f"\nJS instructions in banner slice:  {banner_js} "
          f"(the height-adjusting script)")
    print(f"JS instructions in sidebar slice: {sidebar_js} "
          f"(nothing scripted touches the sidebar)")
    assert banner_js > sidebar_js

    print("\ntop functions in the banner's slice:")
    rows = per_function_fractions(store, banner_slice)
    for name, total, in_slice in rows[:10]:
        if in_slice:
            print(f"  {in_slice:>5d}/{total:<5d} {name}")

    # For comparison: the standard pixel slice covers both elements.
    pixels = profiler.slice(pixel_criteria(store))
    print(f"\nfull pixel slice: {pixels.fraction():.1%} of the trace")


if __name__ == "__main__":
    main()
