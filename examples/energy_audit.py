#!/usr/bin/env python
"""Energy audit: what does the unnecessary computation cost in joules?

The paper motivates the whole characterization with "higher performance
and better energy efficiency".  This example profiles the wiki workload
(a text-heavy reading page), splits its dynamic energy between
pixel-useful and wasted work using the first-order model in
:mod:`repro.analysis.energy`, and compares the two remedies the paper's
related work explores: eliminating the waste vs scheduling it onto a
LITTLE core.
"""

from repro.analysis.energy import energy_breakdown, render_energy_report
from repro.harness.experiments import run_benchmark
from repro.workloads import benchmark


def main() -> None:
    print("running the wiki-article workload...")
    result = run_benchmark(benchmark("wiki_article"))

    breakdown = energy_breakdown(result)
    print()
    print(render_energy_report(breakdown))

    print()
    ratio = breakdown.little_core_savings_uj() / breakdown.total_uj
    print(
        f"big.LITTLE scheduling of the deferrable work alone would cut the "
        f"session's dynamic energy by ~{ratio:.0%}"
    )
    print(
        "(the eQoS/GreenWeb line of work the paper cites reports the same "
        "order of savings on real hardware)"
    )


if __name__ == "__main__":
    main()
